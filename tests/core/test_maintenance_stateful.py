"""Stateful property testing of the dynamic index.

Hypothesis drives a random interleaving of node insertions, edge
insertions, rejected cycle attempts and rebuilds, holding a shadow
graph; after every step the index must agree with the BFS oracle on a
sample of pairs, and on all pairs at teardown.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.maintenance import DynamicChainIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError

from tests.conftest import bfs_reachable


class DynamicIndexMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.index = DynamicChainIndex.from_graph(DiGraph())
        self.shadow = DiGraph()
        self.next_label = 0

    @rule()
    def add_node(self):
        self.index.add_node(self.next_label)
        self.shadow.add_node(self.next_label)
        self.next_label += 1

    @rule(data=st.data())
    def add_edge(self, data):
        if self.next_label < 2:
            return
        tail = data.draw(st.integers(0, self.next_label - 1),
                         label="tail")
        head = data.draw(st.integers(0, self.next_label - 1),
                         label="head")
        if tail == head or self.shadow.has_edge(tail, head):
            return
        creates_cycle = bfs_reachable(self.shadow, head, tail)
        if creates_cycle:
            try:
                self.index.add_edge(tail, head)
            except NotADAGError:
                return
            raise AssertionError("cycle-creating edge was accepted")
        self.index.add_edge(tail, head)
        self.shadow.add_edge(tail, head)

    @rule()
    def rebuild(self):
        self.index.rebuild()

    @invariant()
    def spot_check_against_oracle(self):
        nodes = self.shadow.nodes()
        for u in nodes[:4]:
            for v in nodes[-4:]:
                assert (self.index.is_reachable(u, v)
                        == bfs_reachable(self.shadow, u, v)), (u, v)

    def teardown(self):
        nodes = self.shadow.nodes()
        for u in nodes:
            for v in nodes:
                assert (self.index.is_reachable(u, v)
                        == bfs_reachable(self.shadow, u, v)), (u, v)


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestDynamicIndexMachine = DynamicIndexMachine.TestCase
