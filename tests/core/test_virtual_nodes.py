"""Unit tests for the virtual-node registry and level records."""

from repro.core.virtual_nodes import LevelMatching, VirtualRegistry
from repro.matching.bipartite import BipartiteGraph, Matching


class TestVirtualRegistry:
    def test_ids_start_after_real_nodes(self):
        registry = VirtualRegistry(num_real=5)
        first = registry.create(level=2, for_node=3, direct_tops=[],
                                s_tops=[], support=())
        second = registry.create(level=3, for_node=first.ext_id,
                                 direct_tops=[], s_tops=[], support=())
        assert first.ext_id == 5
        assert second.ext_id == 6
        assert len(registry) == 2

    def test_is_virtual(self):
        registry = VirtualRegistry(num_real=3)
        virtual = registry.create(level=2, for_node=0, direct_tops=[],
                                  s_tops=[], support=())
        assert not registry.is_virtual(2)
        assert registry.is_virtual(virtual.ext_id)

    def test_base_follows_towers(self):
        registry = VirtualRegistry(num_real=4)
        v1 = registry.create(level=2, for_node=1, direct_tops=[],
                             s_tops=[], support=())
        v2 = registry.create(level=3, for_node=v1.ext_id, direct_tops=[],
                             s_tops=[], support=())
        assert registry.base_of(1) == 1
        assert registry.base_of(v1.ext_id) == 1
        assert registry.base_of(v2.ext_id) == 1

    def test_at_level(self):
        registry = VirtualRegistry(num_real=2)
        registry.create(level=2, for_node=0, direct_tops=[], s_tops=[],
                        support=())
        registry.create(level=3, for_node=1, direct_tops=[], s_tops=[],
                        support=())
        assert len(registry.at_level(2)) == 1
        assert registry.at_level(4) == []

    def test_adjacent_tops_concatenates_kinds(self):
        registry = VirtualRegistry(num_real=2)
        virtual = registry.create(level=2, for_node=0,
                                  direct_tops=[7], s_tops=[8, 9],
                                  support=(3,))
        assert virtual.adjacent_tops == [7, 8, 9]


class TestLevelMatching:
    def _record(self):
        bipartite = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 1)])
        matching = Matching(2, 2)
        matching.match(0, 0)
        return LevelMatching(
            level=1, tops=[10, 11], bottoms=[20, 21],
            top_index={10: 0, 11: 1}, bottom_index={20: 0, 21: 1},
            bipartite=bipartite, matching=matching,
            reverse_adj=[[0], [1]])

    def test_matched_top_lookup(self):
        record = self._record()
        assert record.matched_top_of_bottom(20) == 10
        assert record.matched_top_of_bottom(21) is None

    def test_unmatch_bottom(self):
        record = self._record()
        record.unmatch_bottom(20)
        assert record.matched_top_of_bottom(20) is None
        record.unmatch_bottom(20)  # idempotent
