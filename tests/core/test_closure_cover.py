"""Unit and property tests for the exact (Fulkerson) chain cover."""

from hypothesis import given

from repro.core.closure_cover import (
    closure_chain_cover,
    closure_matching,
    dag_width,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import antichain_graph, chain_graph

from tests.conftest import small_dags


class TestWidth:
    def test_chain_has_width_one(self):
        assert dag_width(chain_graph(7)) == 1

    def test_antichain_has_width_n(self):
        assert dag_width(antichain_graph(7)) == 7

    def test_paper_graph_width_three(self, paper_graph):
        assert dag_width(paper_graph) == 3

    def test_empty_graph(self):
        assert dag_width(DiGraph()) == 0

    def test_diamond(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert dag_width(g) == 2


class TestCover:
    def test_cover_size_equals_width(self, paper_graph):
        cover = closure_chain_cover(paper_graph)
        assert cover.num_chains == 3
        cover.check(paper_graph)

    def test_empty_graph(self):
        assert closure_chain_cover(DiGraph()).num_chains == 0

    @given(small_dags())
    def test_cover_is_valid_and_minimum(self, g):
        cover = closure_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    @given(small_dags())
    def test_matching_size_consistency(self, g):
        matching = closure_matching(g)
        assert g.num_nodes - matching.size() == dag_width(g)
