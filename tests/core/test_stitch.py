"""Unit tests for the tail-to-head stitching pass."""

from hypothesis import given

from repro.core.chains import ChainDecomposition
from repro.core.closure_cover import closure_chain_cover, dag_width
from repro.core.stitch import stitch_chains
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph

from tests.conftest import small_dags


class TestStitching:
    def test_merges_singleton_chains_along_a_path(self):
        g = chain_graph(4)
        fragmented = ChainDecomposition(chains=[[0], [1], [2], [3]])
        stitched = stitch_chains(g, fragmented)
        stitched.check(g)
        assert stitched.num_chains == 1

    def test_merges_through_closure_not_just_edges(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        fragmented = ChainDecomposition(chains=[[0], [2], [1]])
        stitched = stitch_chains(g, fragmented)
        stitched.check(g)
        assert stitched.num_chains == 1

    def test_no_merge_possible_returns_input(self):
        g = DiGraph()
        for v in range(3):
            g.add_node(v)
        dec = ChainDecomposition(chains=[[0], [1], [2]])
        assert stitch_chains(g, dec) is dec

    def test_single_chain_is_untouched(self):
        g = chain_graph(3)
        dec = ChainDecomposition(chains=[[0, 1, 2]])
        assert stitch_chains(g, dec) is dec

    @given(small_dags(min_nodes=1))
    def test_stitching_singletons_stays_valid_and_never_worse(self, g):
        singletons = ChainDecomposition(
            chains=[[v] for v in range(g.num_nodes)])
        stitched = stitch_chains(g, singletons)
        stitched.check(g)
        assert stitched.num_chains <= g.num_nodes
        assert stitched.num_chains >= dag_width(g)

    @given(small_dags())
    def test_stitching_an_optimal_cover_cannot_improve_it(self, g):
        optimal = closure_chain_cover(g)
        stitched = stitch_chains(g, optimal)
        assert stitched.num_chains == optimal.num_chains
