"""Unit tests for the chain-decomposition model and its validators."""

import pytest

from repro.core.chains import ChainDecomposition
from repro.graph.digraph import DiGraph
from repro.graph.errors import InvalidChainError


@pytest.fixture
def small_graph():
    return DiGraph.from_edges([(0, 1), (1, 2), (0, 3)])


class TestCoordinates:
    def test_post_init_fills_coordinates(self):
        dec = ChainDecomposition(chains=[[0, 1, 2], [3]])
        assert dec.coordinate(0) == (0, 0)
        assert dec.coordinate(2) == (0, 2)
        assert dec.coordinate(3) == (1, 0)
        assert dec.num_chains == 2
        assert dec.num_nodes == 4

    def test_as_node_chains(self, small_graph):
        dec = ChainDecomposition(chains=[[0, 1, 2], [3]])
        assert dec.as_node_chains(small_graph) == [[0, 1, 2], [3]]


class TestValidation:
    def test_valid_decomposition_passes(self, small_graph):
        # 0 -> 1 -> 2 is a path; 3 alone.
        ChainDecomposition(chains=[[0, 1, 2], [3]]).check(small_graph)

    def test_closure_chain_is_valid(self, small_graph):
        # 0 ⇝ 2 without a direct edge is still a valid chain step.
        ChainDecomposition(chains=[[0, 2], [1], [3]]).check(small_graph)

    def test_partition_rejects_duplicates(self, small_graph):
        dec = ChainDecomposition(chains=[[0, 1], [1, 2], [3]])
        with pytest.raises(InvalidChainError):
            dec.check_partition(small_graph)

    def test_partition_rejects_missing_nodes(self, small_graph):
        dec = ChainDecomposition(chains=[[0, 1, 2]])
        with pytest.raises(InvalidChainError, match="missing"):
            dec.check_partition(small_graph)

    def test_partition_rejects_empty_chain(self, small_graph):
        dec = ChainDecomposition(chains=[[0, 1, 2, 3], []])
        with pytest.raises(InvalidChainError, match="empty"):
            dec.check_partition(small_graph)

    def test_partition_rejects_out_of_range_ids(self, small_graph):
        dec = ChainDecomposition(chains=[[0, 1, 2, 99]])
        with pytest.raises(InvalidChainError):
            dec.check_partition(small_graph)

    def test_order_rejects_unreachable_step(self, small_graph):
        # 3 does not reach 1.
        dec = ChainDecomposition(chains=[[3, 1], [0], [2]])
        with pytest.raises(InvalidChainError):
            dec.check_order(small_graph)

    def test_order_rejects_reversed_chain(self, small_graph):
        dec = ChainDecomposition(chains=[[2, 1, 0], [3]])
        with pytest.raises(InvalidChainError):
            dec.check_order(small_graph)
