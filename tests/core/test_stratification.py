"""Unit tests for the DAG stratification (Section III.A)."""

import pytest
from hypothesis import given

from repro.core.stratification import stratify
from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError
from repro.graph.generators import chain_graph, systematic_dag

from tests.conftest import small_dags


class TestPaperExample:
    def test_fig2_levels(self, paper_graph):
        """Fig. 2: V1={d,e,i}, V2={c,h}, V3={b,g}, V4={a,f}."""
        strat = stratify(paper_graph)
        named = [{paper_graph.node_at(v) for v in level}
                 for level in strat.levels]
        assert named == [{"d", "e", "i"}, {"c", "h"}, {"b", "g"},
                         {"a", "f"}]
        assert strat.height == 4

    def test_fig2_child_links(self, paper_graph):
        """Fig. 2's C-sets, e.g. C1(c) = {d, e} and C2(b) = {c}."""
        strat = stratify(paper_graph)
        c = paper_graph.node_id("c")
        b = paper_graph.node_id("b")
        def by_name(ids):
            return {paper_graph.node_at(v) for v in ids}
        assert by_name(strat.children_by_level[c][1]) == {"d", "e"}
        assert by_name(strat.children_by_level[b][2]) == {"c"}
        assert by_name(strat.children_by_level[b][1]) == {"i"}

    def test_parent_links_mirror_child_links(self, paper_graph):
        strat = stratify(paper_graph)
        for v in range(paper_graph.num_nodes):
            for level, children in strat.children_by_level[v].items():
                for child in children:
                    parents = strat.parents_by_level[child][
                        strat.level_of[v]]
                    assert v in parents


class TestStructure:
    def test_empty_graph(self):
        strat = stratify(DiGraph())
        assert strat.levels == []
        assert strat.height == 0

    def test_antichain_is_single_level(self):
        g = DiGraph()
        for v in range(5):
            g.add_node(v)
        strat = stratify(g)
        assert strat.height == 1
        assert sorted(strat.levels[0]) == list(range(5))

    def test_chain_levels(self):
        g = chain_graph(6)
        strat = stratify(g)
        assert strat.height == 6
        assert all(len(level) == 1 for level in strat.levels)
        # node 5 is the sink -> level 1; node 0 the root -> level 6
        assert strat.level_of[g.node_id(5)] == 1
        assert strat.level_of[g.node_id(0)] == 6

    def test_one_based_level_accessor(self, paper_graph):
        strat = stratify(paper_graph)
        assert strat.level(1) == strat.levels[0]

    def test_cycle_rejected(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            stratify(g)

    def test_dsg_height(self):
        g = systematic_dag(num_roots=10, num_levels=5, seed=0)
        assert stratify(g).height == 5


class TestInvariants:
    @given(small_dags())
    def test_stratification_invariants(self, g):
        strat = stratify(g)
        strat.check(g)

    @given(small_dags(min_nodes=1))
    def test_level_one_is_exactly_the_sinks(self, g):
        strat = stratify(g)
        sinks = {v for v in range(g.num_nodes)
                 if not g.successor_ids(v)}
        assert set(strat.levels[0]) == sinks

    @given(small_dags(min_nodes=1))
    def test_every_nonsink_has_child_one_level_down(self, g):
        strat = stratify(g)
        for v in range(g.num_nodes):
            if g.successor_ids(v):
                child_levels = {strat.level_of[w]
                                for w in g.successor_ids(v)}
                assert strat.level_of[v] - 1 in child_levels
