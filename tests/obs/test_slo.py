"""Unit tests for the SLO engine (``repro.obs.slo``).

The tracker's clock is injected, so every window edge here is pinned
arithmetically — no sleeping, no flakes.
"""

import pytest

from repro.obs import OBS, Objective, SloTracker, parse_objective, \
    parse_objectives
from repro.obs.histogram import Histogram
from repro.obs.slo import FAST_BURN_ALERT, _fraction_within


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tracker(objectives, clock, **kwargs):
    kwargs.setdefault("fast_seconds", 10.0)
    kwargs.setdefault("slow_seconds", 60.0)
    kwargs.setdefault("cell_seconds", 1.0)
    return SloTracker(objectives, clock=clock, **kwargs)


class TestParse:
    def test_latency_units(self):
        assert parse_objective("positive p99 < 2ms").threshold \
            == pytest.approx(2e-3)
        assert parse_objective("negative p50 < 150us").threshold \
            == pytest.approx(150e-6)
        assert parse_objective("batch p999 < 1s").threshold \
            == pytest.approx(1.0)
        assert parse_objective("write p90 < 500ns").threshold \
            == pytest.approx(500e-9)

    def test_target_is_the_percentile_fraction(self):
        assert parse_objective("positive p99 < 2ms").target == 0.99
        assert parse_objective("positive p999 < 2ms").target == 0.999

    def test_spec_is_normalised(self):
        parsed = parse_objective("  positive   p99  <  2ms ")
        assert parsed.spec == "positive p99 < 2ms"

    def test_inclusive_spelling(self):
        assert parse_objective("positive p99 <= 2ms").inclusive
        assert not parse_objective("positive p99 < 2ms").inclusive

    def test_availability(self):
        parsed = parse_objective("availability >= 99.9%")
        assert parsed.klass == "availability"
        assert parsed.threshold == pytest.approx(0.999)
        assert parsed.target == pytest.approx(0.999)

    @pytest.mark.parametrize("text", [
        "bogus",
        "positive p42 < 1ms",          # unknown percentile
        "positive p99 < 0ms",          # non-positive threshold
        "positive p99 < 1parsec",      # unknown unit
        "availability >= 200%",        # ratio out of range
        "availability > 99%",          # only >= is defined
        "Positive p99 < 1ms",          # classes are lowercase
    ])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_objective(text)

    def test_parse_objectives_passes_parsed_through(self):
        parsed = parse_objective("positive p99 < 2ms")
        assert parse_objectives([parsed, "batch p50 < 1ms"])[0] \
            is parsed

    def test_objective_is_frozen(self):
        parsed = parse_objective("positive p99 < 2ms")
        with pytest.raises(AttributeError):
            parsed.threshold = 1.0


class TestFractionWithin:
    def test_empty_histogram_is_vacuously_within(self):
        assert _fraction_within(Histogram(), 1e-3, False) == 1.0

    def test_zero_observations_are_always_within(self):
        histogram = Histogram()
        histogram.observe(0.0)
        assert _fraction_within(histogram, 1e-9, False) == 1.0

    def test_exact_bucket_boundary_needs_inclusive(self):
        # 0.99 lands in the bucket whose upper bound is exactly 1.0,
        # so a 1s threshold counts it only under the <= spelling
        histogram = Histogram()
        histogram.observe(0.99)
        assert _fraction_within(histogram, 1.0, True) == 1.0
        assert _fraction_within(histogram, 1.0, False) == 0.0

    def test_mixed(self):
        histogram = Histogram()
        for value in (1e-4, 2e-4, 5e-3):      # two within, one over 1ms
            histogram.observe(value)
        assert _fraction_within(histogram, 1e-3, False) \
            == pytest.approx(2 / 3)


class TestEvaluateEdges:
    def test_empty_window_is_vacuously_compliant(self):
        clock = FakeClock()
        report = tracker(["positive p99 < 1ms"], clock).evaluate()
        (row,) = report["objectives"]
        assert row["samples"] == 0
        assert row["observed"] == 0.0
        assert row["compliance_ratio"] == 1.0
        assert row["compliant"]
        assert row["burn_rate_fast"] == 0.0
        assert row["burn_rate_slow"] == 0.0
        assert report["healthy"]
        assert report["breach_count"] == 0

    def test_single_compliant_sample(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        slo.observe("positive", 1e-4)
        (row,) = slo.evaluate()["objectives"]
        assert row["samples"] == 1
        assert row["compliant"]
        assert row["compliance_ratio"] == 1.0

    def test_sample_exactly_at_threshold_is_a_violation(self):
        # a 1.0 s sample lands in the bucket *above* the 1 s bound
        # (lower == 1.0), so the strict < objective must count it out
        clock = FakeClock()
        slo = tracker(["positive p99 < 1s"], clock)
        slo.observe("positive", 1.0)
        (row,) = slo.evaluate()["objectives"]
        assert not row["compliant"]
        assert row["compliance_ratio"] == 0.0
        # the whole error budget (1 - 0.99) is burnt
        assert row["burn_rate_slow"] == pytest.approx(100.0)

    def test_other_classes_do_not_feed_the_objective(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        slo.observe("negative", 5.0)           # way over, wrong class
        (row,) = slo.evaluate()["objectives"]
        assert row["samples"] == 0
        assert row["compliant"]


class TestWindows:
    def test_fast_window_forgets_but_slow_remembers(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        for _ in range(10):
            slo.observe("positive", 5e-3)      # violations at t=0
        clock.advance(15.0)                    # beyond fast, within slow
        for _ in range(10):
            slo.observe("positive", 1e-4)      # compliant now
        (row,) = slo.evaluate()["objectives"]
        assert row["burn_rate_fast"] == 0.0    # fast window is clean
        assert row["burn_rate_slow"] == pytest.approx(50.0)
        assert not row["compliant"]            # verdict is slow-window
        assert row["samples"] == 20

    def test_everything_ages_out_of_the_slow_window(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        for _ in range(10):
            slo.observe("positive", 5e-3)
        assert not slo.evaluate()["healthy"]
        clock.advance(61.0)
        (row,) = slo.evaluate()["objectives"]
        assert row["samples"] == 0
        assert row["compliant"]

    def test_window_histogram_merges_cells_exactly(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1s"], clock)
        source = Histogram()
        for step in range(30):
            slo.observe("positive", 1e-3 * (step + 1))
            source.observe(1e-3 * (step + 1))
            clock.advance(1.0)                 # one cell per sample
        merged = slo.window_histogram("positive")
        assert merged.count == 30
        assert merged.buckets() == source.buckets()

    def test_alert_needs_both_windows_burning(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        for _ in range(10):
            slo.observe("positive", 5e-3)
        (row,) = slo.evaluate()["objectives"]
        assert row["burn_rate_fast"] >= FAST_BURN_ALERT
        assert row["alert"]
        clock.advance(15.0)                    # fast window goes quiet
        (row,) = slo.evaluate()["objectives"]
        assert not row["alert"]                # still breaching, no page


class TestAvailability:
    def test_ratio_and_verdict(self):
        clock = FakeClock()
        slo = tracker(["availability >= 99%"], clock)
        for _ in range(99):
            slo.note_request(True)
        slo.note_request(False)
        (row,) = slo.evaluate()["objectives"]
        assert row["observed"] == pytest.approx(0.99)
        assert row["compliant"]                # >= is inclusive
        assert row["burn_rate_slow"] == pytest.approx(1.0)
        slo.note_request(False)
        (row,) = slo.evaluate()["objectives"]
        assert not row["compliant"]

    def test_no_traffic_is_vacuously_available(self):
        clock = FakeClock()
        (row,) = tracker(["availability >= 99%"],
                         clock).evaluate()["objectives"]
        assert row["compliant"]
        assert row["samples"] == 0


class TestBreachLog:
    def test_breach_logged_once_per_transition(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        slo.observe("positive", 5e-3)
        assert not slo.evaluate()["healthy"]
        assert slo.evaluate()["breach_count"] == 1   # no re-log
        clock.advance(61.0)                    # recover (ages out)
        assert slo.evaluate()["healthy"]
        slo.observe("positive", 5e-3)          # breach again
        report = slo.evaluate()
        assert report["breach_count"] == 2
        assert [b["spec"] for b in report["breaches"]] \
            == ["positive p99 < 1ms"] * 2

    def test_breach_event_carries_the_evidence(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        clock.advance(7.0)                     # ``at`` is since start
        slo.observe("positive", 5e-3)
        (event,) = slo.evaluate()["breaches"]
        assert event["at"] == pytest.approx(7.0)
        assert event["class"] == "positive"
        assert event["threshold"] == pytest.approx(1e-3)
        assert event["samples"] == 1
        assert event["observed"] > 1e-3


class TestAbsorb:
    def test_absorb_merges_whole_histograms(self):
        clock = FakeClock()
        slo = tracker(["batch p50 < 1s"], clock)
        source = Histogram()
        for value in (1e-3, 2e-3, 3e-3):
            source.observe(value)
        slo.absorb("batch", source, ok=3)
        (row,) = slo.evaluate()["objectives"]
        assert row["samples"] == 3
        assert row["compliant"]
        assert slo.window_histogram("batch").count == 3


class TestGauges:
    def test_gauge_values_reduce_per_class(self):
        clock = FakeClock()
        slo = tracker(["positive p50 < 1ms", "positive p99 < 1s",
                       "availability >= 99%"], clock)
        slo.observe("positive", 5e-3)          # violates p50, not p99
        slo.note_request(True)
        gauges = slo.gauge_values()
        assert gauges["slo/compliance_ratio/positive"] == 0.0  # min
        assert gauges["slo/compliance_ratio/availability"] == 1.0
        assert gauges["slo/burn_rate_slow/positive"] \
            == pytest.approx(2.0)              # max over objectives
        assert set(gauges) == {
            f"slo/{kind}/{klass}"
            for kind in ("compliance_ratio", "burn_rate_fast",
                         "burn_rate_slow")
            for klass in ("positive", "availability")}

    def test_evaluate_publishes_obs_gauges_when_enabled(self):
        clock = FakeClock()
        slo = tracker(["positive p99 < 1ms"], clock)
        slo.observe("positive", 5e-3)
        OBS.reset()
        OBS.enable()
        try:
            slo.evaluate()
            assert OBS.gauges["slo/compliance_ratio/positive"] == 0.0
            assert OBS.counters["slo/breaches"] == 1
        finally:
            OBS.disable()
            OBS.reset()


class TestConstruction:
    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError):
            SloTracker(["positive p99 < 1ms"], fast_seconds=60,
                       slow_seconds=10)

    def test_accepts_objective_instances(self):
        parsed = parse_objective("positive p99 < 1ms")
        assert SloTracker([parsed]).objectives == [parsed]

    def test_objective_dataclass_identity(self):
        assert parse_objective("positive p99 < 2ms") == Objective(
            spec="positive p99 < 2ms", klass="positive", metric="p99",
            threshold=2e-3, target=0.99, inclusive=False)
