"""Unit tests for the metrics registry, catalogue and profiling hook."""

import io
import json
import threading
import time

import pytest

from repro.obs import (
    CATALOG,
    Histogram,
    MetricsRegistry,
    SCHEMA,
    Stopwatch,
    catalog_names,
    is_known_metric,
    maybe_profiled,
    profiled,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.enable()
    return reg


class TestSpans:
    def test_records_name_count_and_time(self, registry):
        with registry.span("phase"):
            time.sleep(0.001)
        stats = registry.spans["phase"]
        assert stats.count == 1
        assert stats.seconds > 0
        assert stats.min_seconds <= stats.max_seconds

    def test_nested_spans_record_slash_joined_paths(self, registry):
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        spans = registry.spans
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer/inner"].count == 2

    def test_parent_time_covers_children(self, registry):
        with registry.span("parent"):
            with registry.span("child"):
                time.sleep(0.002)
        spans = registry.spans
        assert spans["parent"].seconds >= spans["parent/child"].seconds

    def test_aggregates_min_and_max(self, registry):
        for pause in (0.0, 0.003):
            with registry.span("phase"):
                time.sleep(pause)
        stats = registry.spans["phase"]
        assert stats.count == 2
        assert stats.max_seconds >= 0.003 > stats.min_seconds
        assert stats.seconds >= stats.max_seconds

    def test_span_measures_even_when_disabled(self):
        registry = MetricsRegistry()          # disabled
        with registry.span("phase") as span:
            time.sleep(0.001)
        assert span.seconds > 0               # the bench relies on this
        assert registry.spans == {}

    def test_exception_still_pops_the_stack(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("boom"):
                    raise RuntimeError
        with registry.span("after"):
            pass
        assert "after" in registry.spans      # not "outer/after"

    def test_threads_have_independent_stacks(self, registry):
        def worker():
            with registry.span("thread-side"):
                pass

        with registry.span("main-side"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert "thread-side" in registry.spans
        assert "main-side/thread-side" not in registry.spans


class TestCountersAndGauges:
    def test_counters_accumulate(self, registry):
        registry.count("hits")
        registry.count("hits", 4)
        assert registry.counters["hits"] == 5

    def test_gauges_keep_the_last_value(self, registry):
        registry.gauge("width", 3)
        registry.gauge("width", 7)
        assert registry.gauges["width"] == 7

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.gauge("width", 3)
        registry.observe("latency", 0.001)
        with registry.span("phase"):
            pass
        assert registry.counters == {}
        assert registry.gauges == {}
        assert registry.spans == {}
        assert registry.histograms == {}

    def test_reset_clears_everything(self, registry):
        registry.count("hits")
        registry.observe("latency", 0.001)
        with registry.span("phase"):
            pass
        registry.reset()
        assert registry.counters == {} and registry.spans == {}
        assert registry.histograms == {}


class TestHistograms:
    def test_observe_records_when_enabled(self, registry):
        registry.observe("latency", 0.001)
        registry.observe("latency", 0.002)
        histogram = registry.histograms["latency"]
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(0.003)

    def test_histogram_handle_works_regardless_of_the_switch(self):
        registry = MetricsRegistry()           # disabled
        histogram = registry.histogram("latency")
        histogram.observe(0.005)               # direct handle records
        assert registry.histograms["latency"].count == 1
        registry.observe("latency", 0.005)     # the gated path does not
        assert registry.histograms["latency"].count == 1

    def test_histogram_returns_the_same_object(self, registry):
        assert registry.histogram("latency") \
            is registry.histogram("latency")


class TestCapture:
    def test_capture_enables_resets_and_restores(self):
        registry = MetricsRegistry()
        with registry.capture() as metrics:
            assert registry.enabled
            metrics.count("hits")
        assert not registry.enabled           # restored
        assert registry.counters["hits"] == 1  # data survives exit

    def test_capture_without_reset_accumulates(self, registry):
        registry.count("hits")
        with registry.capture(reset=False):
            registry.count("hits")
        assert registry.counters["hits"] == 2
        assert registry.enabled               # was enabled before


class TestExport:
    def test_json_round_trip_matches_to_dict(self, registry):
        with registry.span("phase"):
            pass
        registry.count("hits", 2)
        registry.gauge("width", 3)
        registry.observe("latency", 0.001)
        document = json.loads(registry.to_json())
        assert document == registry.to_dict()
        assert document["schema"] == SCHEMA
        assert document["counters"] == {"hits": 2}
        assert document["gauges"] == {"width": 3}
        assert document["spans"]["phase"]["count"] == 1
        assert document["histograms"]["latency"]["count"] == 1

    def test_export_writes_a_file(self, registry, tmp_path):
        registry.count("hits")
        target = tmp_path / "metrics.json"
        registry.export(target)
        assert json.loads(target.read_text())["counters"] == {"hits": 1}


class TestCatalog:
    def test_names_are_unique(self):
        names = catalog_names()
        assert len(names) == len(set(names))
        assert len(names) == len(CATALOG)

    def test_literal_names_are_known(self):
        assert is_known_metric("labeling")
        assert is_known_metric("build/chains")

    def test_placeholders_match_instances(self):
        assert is_known_metric("matching/level-3")
        assert is_known_metric("matching/level-12/pairs")
        assert is_known_metric("bench/build/ours")

    def test_nested_paths_match_by_suffix(self):
        assert is_known_metric("bench/build/ours/labeling")
        assert is_known_metric("bench/build/ours/matching/level-2")

    def test_unknown_names_are_rejected(self):
        assert not is_known_metric("nonsense")
        assert not is_known_metric("matching/level-x")


class TestStopwatchAndProfiling:
    def test_stopwatch_measures(self):
        with Stopwatch() as watch:
            time.sleep(0.001)
        assert watch.seconds > 0

    def test_profiled_prints_a_report(self):
        report = io.StringIO()
        with profiled(stream=report, limit=5):
            sum(range(1000))
        assert "function calls" in report.getvalue()

    def test_maybe_profiled_off_is_a_noop(self, capsys):
        with maybe_profiled(False):
            sum(range(1000))
        assert capsys.readouterr().out == ""


class TestStateTransport:
    """Registry state()/merge_state(): pool-wide exact aggregation."""

    def _worker_registry(self, requests, workers):
        registry = MetricsRegistry()
        registry.enable()
        registry.count("service/requests", requests)
        registry.gauge("service/workers", workers)
        with registry.span("serve"):
            time.sleep(0.001)
        histogram = registry.histogram("latency")
        histogram.observe(0.002 * requests)
        return registry

    def test_counters_add_and_gauges_take_the_last_writer(self):
        merged = MetricsRegistry()
        merged.enable()
        merged.merge_state(self._worker_registry(3, 1).state())
        merged.merge_state(self._worker_registry(5, 2).state())
        assert merged.counters["service/requests"] == 8
        assert merged.gauges["service/workers"] == 2
        assert merged.spans["serve"].count == 2
        assert merged.histograms["latency"].count == 2

    def test_merge_state_is_exact_for_histograms(self):
        a = self._worker_registry(1, 1)
        b = self._worker_registry(4, 1)
        merged = MetricsRegistry()
        merged.enable()
        merged.merge_state(a.state()).merge_state(b.state())
        direct = Histogram().merge(a.histograms["latency"]) \
                            .merge(b.histograms["latency"])
        assert merged.histograms["latency"].to_dict() \
            == direct.to_dict()

    def test_state_survives_json(self):
        registry = self._worker_registry(2, 1)
        merged = MetricsRegistry()
        merged.enable()
        merged.merge_state(json.loads(json.dumps(registry.state())))
        assert merged.counters["service/requests"] == 2
        assert merged.histograms["latency"].count == 1
