"""The library emits the documented metrics while doing real work."""

import json

import pytest

from repro import ChainIndex, DiGraph, DynamicChainIndex, OBS
from repro.cli import main
from repro.core.persistence import load_index, save_index
from repro.graph.generators import semi_random_dag
from repro.graph.io import write_edge_list
from repro.obs import is_known_metric


@pytest.fixture
def graph():
    return semi_random_dag(120, 80, seed=5)


class TestBuildEmissions:
    def test_build_emits_the_documented_phase_spans(self, graph):
        with OBS.capture() as metrics:
            ChainIndex.build(graph)
        spans = set(metrics.spans)
        assert {"condense", "stratify", "resolution",
                "labeling"} <= spans
        levels = [s for s in spans if s.startswith("matching/level-")]
        assert levels, "no per-level matching spans recorded"

    def test_build_emits_the_documented_counters_and_gauges(self, graph):
        with OBS.capture() as metrics:
            index = ChainIndex.build(graph)
        assert metrics.counters["build/chains"] == index.num_chains
        assert metrics.counters["matching/pairs"] > 0
        assert metrics.counters["labeling/merge_ops"] > 0
        assert metrics.gauges["build/levels"] >= 1
        assert metrics.gauges["index/size_words"] == index.size_words()

    def test_every_emitted_name_is_in_the_catalogue(self, graph):
        with OBS.capture() as metrics:
            index = ChainIndex.build(graph)
            index.is_reachable(0, 1)
            dynamic = DynamicChainIndex(DiGraph.from_edges([(1, 2)]))
            dynamic.add_node(3)
            dynamic.add_edge(2, 3)
        emitted = (list(metrics.spans) + list(metrics.counters)
                   + list(metrics.gauges))
        unknown = [name for name in emitted
                   if not is_known_metric(name)]
        assert not unknown, f"undocumented metrics: {unknown}"

    def test_per_level_pairs_sum_to_the_pairs_counter(self, graph):
        with OBS.capture() as metrics:
            ChainIndex.build(graph)
        per_level = sum(value
                        for name, value in metrics.gauges.items()
                        if name.startswith("matching/level-"))
        assert per_level == metrics.counters["matching/pairs"]


class TestQueryAndMaintenanceEmissions:
    def test_query_counters_increment(self, graph):
        index = ChainIndex.build(graph)
        with OBS.capture() as metrics:
            index.is_reachable(0, 1)
            index.is_reachable(2, 2)          # identity: no probe
        assert metrics.counters["query/answered"] == 2
        # The non-identity query either survives the pre-filter and
        # probes, or is rejected by it — never both, never neither.
        probes = metrics.counters.get("query/probes", 0)
        hits = metrics.counters.get("query/prefilter_hits", 0)
        assert probes + hits == 1

    def test_prefilter_rejects_without_probing(self):
        index = ChainIndex.build(DiGraph.from_edges([(0, 1), (1, 2)]))
        with OBS.capture() as metrics:
            assert not index.is_reachable(2, 0)  # rank(2) > rank(0)
        assert metrics.counters["query/prefilter_hits"] == 1
        assert "query/probes" not in metrics.counters

    def test_batch_counters_publish_batch_totals(self, graph):
        index = ChainIndex.build(graph)
        pairs = [(0, 1), (2, 2), (5, 9), (9, 5)]
        with OBS.capture() as metrics:
            batch_answers = index.is_reachable_many(pairs)
        assert metrics.counters["query/answered"] == len(pairs)
        probes = metrics.counters.get("query/probes", 0)
        hits = metrics.counters.get("query/prefilter_hits", 0)
        assert probes + hits == 3             # all but the (2, 2) hit
        # The batch path publishes the same totals the scalar path
        # accumulates one by one.
        with OBS.capture() as scalar_metrics:
            scalar_answers = [index.is_reachable(u, v)
                              for u, v in pairs]
        assert batch_answers == scalar_answers
        assert dict(scalar_metrics.counters) == dict(metrics.counters)

    def test_persistence_spans(self, graph, tmp_path):
        index = ChainIndex.build(graph)
        path = tmp_path / "graph.idx"
        with OBS.capture() as metrics:
            save_index(index, path)
            load_index(path)
        assert metrics.spans["persist/save"].count == 1
        assert metrics.spans["persist/load"].count == 1

    def test_maintenance_counters(self):
        with OBS.capture() as metrics:
            dynamic = DynamicChainIndex(DiGraph.from_edges([(1, 2)]))
            dynamic.add_node(3)
            dynamic.add_edge(2, 3)
        assert metrics.spans["maintenance/rebuild"].count >= 1
        assert metrics.counters["maintenance/nodes_added"] == 1
        assert metrics.counters["maintenance/edges_added"] == 1
        assert metrics.counters["maintenance/label_updates"] >= 1


class TestDisabledByDefault:
    def test_build_records_nothing_when_off(self, graph):
        OBS.reset()
        index = ChainIndex.build(graph)
        index.is_reachable(0, 1)
        assert OBS.spans == {}
        assert OBS.counters == {}
        assert OBS.gauges == {}


class TestCliMetricsOut:
    @pytest.fixture
    def graph_file(self, tmp_path, graph):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        return str(path)

    def test_index_writes_the_documented_json(self, graph_file,
                                              tmp_path, capsys):
        out = tmp_path / "metrics.json"
        idx = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(idx),
                     "--metrics-out", str(out)]) == 0
        assert f"metrics -> {out}" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["schema"] == "repro.obs/2"
        assert "histograms" in document          # additive v2 key
        assert "labeling" in document["spans"]
        assert any(name.startswith("matching/level-")
                   for name in document["spans"])
        assert document["counters"]["build/chains"] >= 1
        assert document["counters"]["build/virtual_nodes"] >= 0
        assert not OBS.enabled                # switched back off

    def test_query_writes_query_counters(self, graph_file, tmp_path):
        out = tmp_path / "metrics.json"
        main(["query", graph_file, "0", "1", "--metrics-out", str(out)])
        document = json.loads(out.read_text())
        assert document["counters"]["query/answered"] == 1
        assert not OBS.enabled

    def test_stats_profile_prints_a_breakdown(self, graph_file, capsys):
        assert main(["stats", graph_file, "--profile"]) == 0
        assert "function calls" in capsys.readouterr().out
