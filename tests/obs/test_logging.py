"""Structured JSON-lines logging: shapes, sinks, failure swallowing."""

import io
import json
import sys

from repro.obs import JsonLinesLogger, open_log


class TestJsonLinesLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = JsonLinesLogger(stream)
        log.log("swap_start", epoch=2, pending_writes=5)
        log.log("swap_finish", epoch=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "swap_start"
        assert first["epoch"] == 2
        assert first["pending_writes"] == 5
        assert isinstance(first["ts"], float)
        assert json.loads(lines[1])["event"] == "swap_finish"
        assert log.events == 2

    def test_returns_the_record(self):
        record = JsonLinesLogger(io.StringIO()).log("overloaded",
                                                    queue_depth=9)
        assert record["event"] == "overloaded"
        assert record["queue_depth"] == 9

    def test_non_serialisable_fields_stringify(self):
        stream = io.StringIO()
        JsonLinesLogger(stream).log("oddity", value={1, 2})
        record = json.loads(stream.getvalue())
        assert isinstance(record["value"], str)

    def test_write_failures_never_raise(self):
        stream = io.StringIO()
        log = JsonLinesLogger(stream)
        stream.close()
        log.log("after_close")              # telemetry must not fail
        assert log.events == 1


class TestOpenLog:
    def test_path_sink_appends(self, tmp_path):
        target = tmp_path / "events.jsonl"
        log = open_log(target)
        log.log("first")
        log.close()
        log = open_log(str(target))
        log.log("second")
        log.close()
        events = [json.loads(line)["event"]
                  for line in target.read_text().splitlines()]
        assert events == ["first", "second"]

    def test_dash_and_none_mean_stderr(self):
        assert open_log("-")._stream is sys.stderr  # noqa: SLF001
        assert open_log(None)._stream is sys.stderr  # noqa: SLF001

    def test_stream_sink_wraps(self):
        stream = io.StringIO()
        log = open_log(stream)
        log.log("hello")
        assert json.loads(stream.getvalue())["event"] == "hello"
