"""Streaming histogram: error bound, thread safety, exact merging."""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import RELATIVE_ERROR, SUB_BUCKETS, Histogram
from repro.obs.summary import percentile as exact_percentile


def build(values) -> Histogram:
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestBuckets:
    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.buckets() == []
        assert len(histogram) == 0

    def test_counts_and_extrema(self):
        histogram = build([1.0, 2.0, 4.0, 8.0])
        assert histogram.count == 4
        assert histogram.sum == 15.0
        assert histogram.min_value == 1.0
        assert histogram.max_value == 8.0
        assert histogram.mean == pytest.approx(3.75)

    def test_nonpositive_and_nonfinite_land_in_the_zero_bucket(self):
        histogram = build([0.0, -1.0, float("nan"), float("inf"), 2.0])
        assert histogram.count == 5
        assert histogram.zeros == 4
        assert histogram.buckets()[0] == (0.0, 4)
        # zeros dominate the median
        assert histogram.percentile(0.5) == 0.0

    def test_bucket_upper_bounds_ascend(self):
        histogram = build([0.001 * (i + 1) for i in range(500)])
        uppers = [upper for upper, _ in histogram.buckets()]
        assert uppers == sorted(uppers)
        assert sum(count for _, count in histogram.buckets()) == 500

    def test_memory_is_bounded_by_touched_buckets(self):
        histogram = build([1.5] * 100_000)
        # 100k identical observations touch exactly one bucket
        assert len(histogram._buckets) == 1  # noqa: SLF001

    def test_summary_shape(self):
        summary = build([1.0, 2.0, 3.0]).summary()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p90", "p99", "p999"}
        assert summary["count"] == 3

    def test_to_dict_shape(self):
        data = build([1.0, 1.0, 0.0]).to_dict()
        assert data["count"] == 3
        assert data["buckets"][0] == [0.0, 1]         # zero bucket first
        assert sum(count for _, count in data["buckets"]) == 3


class TestPercentileErrorBound:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200),
        fraction=st.sampled_from([0.25, 0.5, 0.9, 0.99, 0.999, 1.0]),
    )
    def test_estimate_within_documented_relative_error(self, values,
                                                       fraction):
        """The pinned contract: |estimate - exact nearest-rank| is
        at most RELATIVE_ERROR of the exact value."""
        histogram = build(values)
        exact = exact_percentile(values, fraction)
        estimate = histogram.percentile(fraction)
        assert abs(estimate - exact) <= exact * RELATIVE_ERROR

    def test_error_constant_matches_the_layout(self):
        assert RELATIVE_ERROR == 1.0 / SUB_BUCKETS

    def test_percentiles_are_monotone_in_the_fraction(self):
        histogram = build([0.001, 0.002, 0.04, 0.8, 1.6, 32.0])
        ladder = histogram.percentiles(0.1, 0.5, 0.9, 0.99, 0.999)
        assert ladder == sorted(ladder)

    def test_estimate_clamps_into_the_observed_range(self):
        histogram = build([3.0])
        for fraction in (0.01, 0.5, 0.999):
            assert histogram.percentile(fraction) == 3.0


class TestThreadSafety:
    def test_concurrent_observes_lose_nothing(self):
        histogram = Histogram()
        per_thread = 10_000
        threads = [
            threading.Thread(
                target=lambda: [histogram.observe(0.001 * (i % 7 + 1))
                                for i in range(per_thread)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 8 * per_thread
        assert sum(count for _, count in histogram.buckets()) \
            == 8 * per_thread
        expected_sum = 8 * sum(0.001 * (i % 7 + 1)
                               for i in range(per_thread))
        assert histogram.sum == pytest.approx(expected_sum)


class TestMerge:
    def test_merge_is_exact(self):
        left = build([1.0, 2.0, 0.0])
        right = build([2.0, 64.0])
        merged = Histogram().merge(left).merge(right)
        combined = build([1.0, 2.0, 0.0, 2.0, 64.0])
        assert merged.to_dict() == combined.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                             allow_nan=False), max_size=50),
        b=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                             allow_nan=False), max_size=50),
        c=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                             allow_nan=False), max_size=50),
    )
    def test_merge_is_associative(self, a, b, c):
        left_first = Histogram().merge(build(a)).merge(build(b)) \
                                .merge(build(c))
        right_first = Histogram().merge(build(a)).merge(
            Histogram().merge(build(b)).merge(build(c)))
        left, right = left_first.to_dict(), right_first.to_dict()
        # bucket counts (and so every percentile) merge exactly; only
        # the float `sum` accumulates in a different order
        assert left["buckets"] == right["buckets"]
        assert (left["count"], left["min"], left["max"]) \
            == (right["count"], right["min"], right["max"])
        assert left["sum"] == pytest.approx(right["sum"])
        for fraction in (0.5, 0.99):
            assert left_first.percentile(fraction) \
                == right_first.percentile(fraction)

    def test_merged_percentiles_match_the_concatenation(self):
        a, b = [0.001, 0.002, 0.003], [0.4, 0.5, 0.6, 0.7]
        merged = Histogram().merge(build(a)).merge(build(b))
        combined = build(a + b)
        for fraction in (0.1, 0.5, 0.9, 0.999):
            assert merged.percentile(fraction) \
                == combined.percentile(fraction)

    def test_merge_tracks_extrema(self):
        merged = Histogram().merge(build([5.0])).merge(build([0.25]))
        assert merged.min_value == 0.25
        assert merged.max_value == 5.0
        assert math.isinf(Histogram().min_value)


class TestStateTransport:
    """state()/from_state()/merge_state(): the worker-pool wire form."""

    def test_from_state_reconstructs_exactly(self):
        original = build([0.0, 0.001, 0.02, 0.3, 4.0])
        clone = Histogram.from_state(original.state())
        assert clone.to_dict() == original.to_dict()
        for fraction in (0.1, 0.5, 0.99, 0.999):
            assert clone.percentile(fraction) \
                == original.percentile(fraction)

    def test_merge_state_equals_merge(self):
        a, b = build([0.001, 0.5, 0.5]), build([0.0, 0.02, 7.0])
        via_state = Histogram().merge_state(a.state()) \
                               .merge_state(b.state())
        via_merge = Histogram().merge(a).merge(b)
        assert via_state.to_dict() == via_merge.to_dict()

    def test_json_round_trip_stringified_keys_are_tolerated(self):
        import json
        original = build([0.003, 0.3, 3.0])
        wired = json.loads(json.dumps(original.state()))
        assert all(isinstance(key, str)
                   for key in wired["buckets"])
        clone = Histogram.from_state(wired)
        assert clone.to_dict() == original.to_dict()

    def test_empty_state_merges_as_a_no_op(self):
        target = build([0.25])
        before = target.to_dict()
        target.merge_state(Histogram().state())
        assert target.to_dict() == before
        assert target.min_value == 0.25          # inf min not folded in
