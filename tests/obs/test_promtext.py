"""Prometheus text exposition: names, series shapes, cumulation."""

import time

from repro.obs import Histogram, MetricsRegistry
from repro.obs.promtext import (
    CONTENT_TYPE,
    prom_name,
    render,
    render_histogram,
)


def parse_samples(text: str) -> dict:
    """name{labels} -> float for every sample line in the document."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


class TestNames:
    def test_slashes_flatten_to_underscores(self):
        assert prom_name("service/latency/positive") \
            == "repro_service_latency_positive"

    def test_invalid_characters_flatten(self):
        assert prom_name("matching/level-3") == "repro_matching_level_3"

    def test_prefix_is_optional(self):
        assert prom_name("build/chains", prefix="") == "build_chains"


class TestHistogramSeries:
    def test_buckets_cumulate_and_end_at_inf(self):
        histogram = Histogram()
        for value in (0.5, 0.5, 3.0):
            histogram.observe(value)
        lines = render_histogram("service/queue_wait", histogram)
        assert lines[0] == "# TYPE repro_service_queue_wait_seconds " \
                           "histogram"
        bucket_lines = [line for line in lines if "_bucket{" in line]
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)          # cumulative
        assert bucket_lines[-1].startswith(
            'repro_service_queue_wait_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 3
        samples = parse_samples("\n".join(lines))
        assert samples["repro_service_queue_wait_seconds_count"] == 3
        assert abs(samples["repro_service_queue_wait_seconds_sum"]
                   - 4.0) < 1e-9

    def test_zero_bucket_renders_at_le_zero(self):
        histogram = Histogram()
        histogram.observe(0.0)
        text = "\n".join(render_histogram("service/queue_wait",
                                          histogram))
        assert '_bucket{le="0"} 1' in text

    def test_unknown_names_get_no_unit_suffix(self):
        histogram = Histogram()
        histogram.observe(1.0)
        lines = render_histogram("custom/thing", histogram)
        assert lines[0] == "# TYPE repro_custom_thing histogram"


class TestRender:
    def test_full_document(self):
        registry = MetricsRegistry(enabled=True)
        registry.count("service/requests", 7)
        registry.gauge("service/epoch", 3)
        with registry.span("service/request"):
            time.sleep(0.001)
        registry.observe("service/request_latency", 0.002)
        text = render(registry)
        samples = parse_samples(text)
        assert samples["repro_service_requests_total"] == 7
        assert samples["repro_service_epoch"] == 3
        assert samples["repro_service_request_seconds_count"] == 1
        assert samples["repro_service_request_seconds_sum"] > 0
        assert samples["repro_service_request_seconds_min"] > 0
        assert samples[
            "repro_service_request_latency_seconds_count"] == 1
        assert text.endswith("\n")

    def test_extra_histograms_render_even_with_registry_disabled(self):
        registry = MetricsRegistry()                 # disabled
        histogram = Histogram()
        histogram.observe(0.004)
        text = render(registry,
                      histograms={"service/kernel_batch": histogram})
        assert "# TYPE repro_service_kernel_batch_seconds histogram" \
            in text
        assert parse_samples(text)[
            "repro_service_kernel_batch_seconds_count"] == 1

    def test_extra_histograms_override_registry_ones_by_name(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("service/queue_wait", 1.0)
        own = Histogram()
        for _ in range(5):
            own.observe(2.0)
        text = render(registry,
                      histograms={"service/queue_wait": own})
        assert parse_samples(text)[
            "repro_service_queue_wait_seconds_count"] == 5

    def test_content_type_is_the_prometheus_text_version(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE
