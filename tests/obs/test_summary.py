"""The shared exact nearest-rank percentile helper."""

from repro.obs import percentile, summarize


class TestPercentile:
    def test_median_of_two_is_the_lower_value(self):
        # the bug the shared helper fixes: the old ad-hoc copies
        # returned 2.0 here (0-based int(q*n) overshoots the rank)
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0], 0.51) == 2.0

    def test_boundaries(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank_on_a_known_ladder(self):
        values = list(range(1, 101))      # 1..100, already sorted
        assert percentile(values, 0.50, presorted=True) == 50
        assert percentile(values, 0.90, presorted=True) == 90
        assert percentile(values, 0.99, presorted=True) == 99
        assert percentile(values, 0.999, presorted=True) == 100

    def test_presorted_skips_the_sort(self):
        # presorted=True trusts the caller: reversed input gives the
        # rank in the *given* order, proving no hidden sort happens
        assert percentile([3.0, 1.0], 0.5, presorted=True) == 3.0

    def test_does_not_mutate_the_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 0.5)
        assert values == [3.0, 1.0, 2.0]


class TestSummarize:
    def test_shape_and_values(self):
        summary = summarize([4.0, 1.0, 2.0, 3.0])
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0
        assert summary["p999"] == 4.0

    def test_empty_is_all_zero(self):
        summary = summarize([])
        assert summary == {"count": 0, "mean": 0.0, "min": 0.0,
                           "max": 0.0, "p50": 0.0, "p90": 0.0,
                           "p99": 0.0, "p999": 0.0}
