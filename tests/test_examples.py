"""The shipped examples run and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, check=True)
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "chains: 3" in out
    assert "a reaches e" in out
    assert "d does NOT reach a" in out


def test_poset_chains():
    out = run_example("poset_chains.py")
    assert "minimum chains: 30" in out
    assert "6 divides 42: True" in out
    assert "6 divides 45: False" in out


def test_software_dependencies():
    out = run_example("software_dependencies.py")
    assert "mutual-dependency knots" in out
    assert "mutually reachable" in out


def test_bill_of_materials():
    out = run_example("bill_of_materials.py")
    assert "parts explosion" in out
    assert "engineering change applied incrementally" in out


def test_service_telemetry():
    out = run_example("service_telemetry.py")
    assert "traced query a->e (reachable=True" in out
    assert "latency by answer class" in out
    assert "slowest retained trace: q-" in out
    assert "Prometheus scrape of http://" in out
    assert "repro_service_request_latency_seconds_count" in out
    assert "slow-query records" in out
    assert "'listening'" in out and "'drain_finish'" in out


@pytest.mark.slow
def test_ontology_queries():
    out = run_example("ontology_queries.py")
    assert "speedup" in out
    assert "'Thing' subsumes everything: True" in out
