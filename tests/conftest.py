"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph

# ----------------------------------------------------------------------
# the running example: Fig. 1(a) of the paper
# ----------------------------------------------------------------------
PAPER_FIG1_EDGES = [
    ("a", "b"), ("a", "c"),
    ("b", "c"), ("b", "i"),
    ("c", "d"), ("c", "e"),
    ("f", "b"), ("f", "g"),
    ("g", "d"), ("g", "h"),
    ("h", "e"), ("h", "i"),
]


@pytest.fixture
def paper_graph() -> DiGraph:
    """The DAG of the paper's Fig. 1(a); its width is 3."""
    return DiGraph.from_edges(PAPER_FIG1_EDGES)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def small_dags(draw, max_nodes: int = 14,
               min_nodes: int = 0) -> DiGraph:
    """A random DAG: forward edges over integer nodes 0..n-1."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = DiGraph()
    for v in range(n):
        graph.add_node(v)
    if n >= 2:
        all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = draw(st.sets(st.sampled_from(all_pairs)))
        for tail, head in sorted(edges):
            graph.add_edge(tail, head)
    return graph


@st.composite
def small_digraphs(draw, max_nodes: int = 12,
                   min_nodes: int = 0) -> DiGraph:
    """A random digraph, cycles allowed."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = DiGraph()
    for v in range(n):
        graph.add_node(v)
    if n >= 2:
        all_pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        edges = draw(st.sets(st.sampled_from(all_pairs)))
        for tail, head in sorted(edges):
            graph.add_edge(tail, head)
    return graph


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
def bfs_reachable(graph: DiGraph, source, target) -> bool:
    """Independent reflexive-reachability oracle (pure BFS)."""
    src = graph.node_id(source)
    dst = graph.node_id(target)
    if src == dst:
        return True
    seen = {src}
    frontier = [src]
    while frontier:
        nxt = []
        for v in frontier:
            for w in graph.successor_ids(v):
                if w == dst:
                    return True
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return False


def all_pairs_oracle(graph: DiGraph) -> dict[tuple, bool]:
    """Reflexive reachability for every ordered node pair."""
    nodes = graph.nodes()
    return {(u, v): bfs_reachable(graph, u, v)
            for u in nodes for v in nodes}
