"""Unit tests for topological utilities."""

import pytest
from hypothesis import given

import networkx as nx

from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError
from repro.graph.topology import (
    find_cycle,
    is_dag,
    longest_path_length,
    roots,
    sinks,
    topological_order,
    topological_order_ids,
)
from repro.graph.validation import check_topological_order

from tests.conftest import small_dags, small_digraphs


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestTopologicalOrder:
    def test_simple_chain(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert topological_order(g) == ["a", "b", "c"]

    def test_cycle_raises_with_cycle_attached(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(NotADAGError) as excinfo:
            topological_order_ids(g)
        assert excinfo.value.cycle is not None
        assert set(excinfo.value.cycle) == {"a", "b", "c"}

    def test_empty_graph(self):
        assert topological_order(DiGraph()) == []

    @given(small_dags())
    def test_order_is_valid_on_random_dags(self, g):
        order = topological_order(g)
        check_topological_order(g, order)

    @given(small_digraphs())
    def test_matches_networkx_dag_judgement(self, g):
        assert is_dag(g) == nx.is_directed_acyclic_graph(to_networkx(g))


class TestFindCycle:
    def test_dag_has_no_cycle(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c")])
        assert find_cycle(g) is None

    def test_self_cycle_impossible(self):
        # Self-loops are dropped by DiGraph, so no 1-cycles exist.
        g = DiGraph()
        g.add_node("a")
        g.add_edge("a", "a")
        assert find_cycle(g) is None

    def test_two_cycle_found(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        cycle = find_cycle(g)
        assert cycle is not None and set(cycle) == {"a", "b"}

    @given(small_digraphs())
    def test_reported_cycle_is_a_real_cycle(self, g):
        cycle = find_cycle(g)
        if cycle is None:
            assert is_dag(g)
        else:
            for tail, head in zip(cycle, cycle[1:] + cycle[:1]):
                assert g.has_edge(tail, head)


class TestRootsAndSinks:
    def test_paper_graph_roots_and_sinks(self, paper_graph):
        assert sorted(roots(paper_graph)) == ["a", "f"]
        assert sorted(sinks(paper_graph)) == ["d", "e", "i"]

    def test_isolated_node_is_both(self):
        g = DiGraph()
        g.add_node("x")
        assert roots(g) == ["x"] and sinks(g) == ["x"]


class TestLongestPath:
    def test_chain_length(self):
        g = DiGraph.from_edges([(i, i + 1) for i in range(5)])
        assert longest_path_length(g) == 5

    def test_antichain_is_zero(self):
        g = DiGraph()
        for v in range(4):
            g.add_node(v)
        assert longest_path_length(g) == 0

    @given(small_dags(min_nodes=1))
    def test_matches_networkx(self, g):
        expected = nx.dag_longest_path_length(to_networkx(g))
        assert longest_path_length(g) == expected
