"""Unit tests for the workload generators (Section V graph families)."""

import pytest

from repro.graph.generators import (
    antichain_graph,
    chain_graph,
    citation_dag,
    dense_dag,
    graph_stats,
    layered_random_dag,
    random_dag,
    random_digraph,
    scale_chain_dag,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)
from repro.graph.topology import is_dag, longest_path_length


class TestSparseRandom:
    def test_is_dag_and_near_requested_size(self):
        g = sparse_random_dag(500, 600, seed=7)
        assert is_dag(g)
        assert g.num_nodes <= 500
        # SCC collapsing shrinks the graph somewhat at e/n ≈ 1.2 (the
        # giant-component threshold for random digraphs) but most nodes
        # survive, as in the paper's Group-I preprocessing.
        assert g.num_nodes > 350

    def test_deterministic_in_seed(self):
        a = sparse_random_dag(200, 240, seed=3)
        b = sparse_random_dag(200, 240, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = sparse_random_dag(200, 240, seed=3)
        b = sparse_random_dag(200, 240, seed=4)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError):
            sparse_random_dag(0, 5)


class TestSystematic:
    def test_structure_matches_spec(self):
        g = systematic_dag(num_roots=10, num_levels=4,
                           children_per_node=4, parents_per_node=3, seed=1)
        assert is_dag(g)
        assert longest_path_length(g) == 3  # 4 levels
        # every non-root has ~3 parents
        roots = [v for v in g.nodes() if g.in_degree(v) == 0]
        assert len(roots) == 10
        non_roots = [v for v in g.nodes() if g.in_degree(v) > 0]
        average_in = sum(g.in_degree(v) for v in non_roots) / len(non_roots)
        assert 2.0 <= average_in <= 3.0

    def test_level_sizes_grow(self):
        g = systematic_dag(num_roots=30, num_levels=3, seed=2)
        # 30 roots -> ~40 -> ~53
        assert g.num_nodes > 90

    def test_validation(self):
        with pytest.raises(ValueError):
            systematic_dag(0, 3)
        with pytest.raises(ValueError):
            systematic_dag(3, 3, children_per_node=0)


class TestSemiRandom:
    def test_tree_plus_extra_edges(self):
        g = semi_random_dag(500, 200, seed=5)
        assert is_dag(g)
        assert g.num_nodes >= 500
        assert g.num_edges == (g.num_nodes - 1) + 200

    def test_zero_extra_edges_gives_tree(self):
        g = semi_random_dag(100, 0, seed=6)
        assert g.num_edges == g.num_nodes - 1
        # every non-root has exactly one parent
        assert sum(1 for v in g.nodes() if g.in_degree(v) == 1) == 99

    def test_single_node(self):
        g = semi_random_dag(1, 0, seed=0)
        assert g.num_nodes == 1


class TestDense:
    def test_density_close_to_requested(self):
        g = dense_dag(120, 0.25, seed=9)
        assert is_dag(g)
        density = g.num_edges / (g.num_nodes ** 2)
        assert 0.2 < density < 0.3

    def test_rejects_impossible_density(self):
        with pytest.raises(ValueError):
            dense_dag(50, 0.7)

    def test_single_node(self):
        g = dense_dag(1, 0.25)
        assert g.num_nodes == 1 and g.num_edges == 0


class TestGenericFamilies:
    def test_random_dag_probability_bounds(self):
        with pytest.raises(ValueError):
            random_dag(5, 1.5)
        g = random_dag(10, 1.0, seed=0)
        assert g.num_edges == 45  # complete DAG

    def test_random_digraph_edge_count(self):
        g = random_digraph(30, 60, seed=1)
        assert g.num_edges == 60

    def test_layered_random_dag_levels(self):
        g = layered_random_dag([4, 6, 5], 0.4, seed=2)
        assert is_dag(g)
        assert g.num_nodes == 15
        assert longest_path_length(g) == 2
        with pytest.raises(ValueError):
            layered_random_dag([3, 0], 0.5)

    def test_chain_and_antichain(self):
        assert chain_graph(5).num_edges == 4
        assert antichain_graph(5).num_edges == 0


class TestCitation:
    def test_is_dag_with_backward_citations(self):
        g = citation_dag(300, citations_per_node=3, seed=1)
        assert is_dag(g)
        # Every non-first paper cites at least one earlier one.
        assert all(g.out_degree(v) >= 1 for v in range(1, 300))
        # Edges always point to strictly earlier papers.
        assert all(tail > head for tail, head in g.edges())

    def test_heavy_tail(self):
        g = citation_dag(500, citations_per_node=3, seed=2)
        degrees = sorted((g.in_degree(v) for v in g.nodes()),
                         reverse=True)
        # Preferential attachment concentrates citations: the top paper
        # collects far more than the median.
        assert degrees[0] >= 10 * max(1, degrees[len(degrees) // 2])

    def test_deterministic(self):
        a = citation_dag(100, seed=3)
        b = citation_dag(100, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            citation_dag(0)
        with pytest.raises(ValueError):
            citation_dag(5, citations_per_node=-1)

    def test_single_node(self):
        g = citation_dag(1)
        assert g.num_nodes == 1 and g.num_edges == 0


class TestGraphStats:
    def test_dsg_average_path_length_is_level_count(self):
        g = systematic_dag(num_roots=20, num_levels=6, seed=3)
        stats = graph_stats(g, path_samples=200, seed=0)
        # Paths run level by level; a few end early at internal nodes
        # no child happened to pick, so the average sits just below the
        # level count.
        assert 5.0 < stats.average_path_length <= 6.0
        assert stats.height == 6

    def test_out_degree_of_internal_nodes(self):
        g = chain_graph(4)
        stats = graph_stats(g, path_samples=10)
        assert stats.average_out_degree_internal == pytest.approx(1.0)

    def test_row_shape(self):
        stats = graph_stats(chain_graph(3), path_samples=10)
        assert stats.row() == (3, 2, 1.0, 3.0)


class TestScaleChainDag:
    def test_structure_matches_spec(self):
        g = scale_chain_dag(400, 500, width=4, seed=3)
        assert g.num_nodes == 400
        assert g.num_edges == 500
        assert is_dag(g)
        # the backbone realises the width-4 parallel chains
        for v in range(396):
            assert g.has_edge(v, v + 4)

    def test_cross_links_respect_the_span(self):
        g = scale_chain_dag(2_000, 2_400, width=4, cross_span=40,
                            seed=0)
        for tail, head in g.edges():
            assert 0 < head - tail <= 40

    def test_deterministic_in_seed(self):
        a = scale_chain_dag(300, 380, seed=9)
        b = scale_chain_dag(300, 380, seed=9)
        c = scale_chain_dag(300, 380, seed=10)
        assert sorted(a.edges()) == sorted(b.edges())
        assert sorted(a.edges()) != sorted(c.edges())

    def test_width_clamped_to_node_count(self):
        g = scale_chain_dag(3, 3, width=64, seed=0)
        assert g.num_nodes == 3
        assert is_dag(g)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_chain_dag(0, 5)
        with pytest.raises(ValueError):
            scale_chain_dag(10, 5, width=0)
        with pytest.raises(ValueError):
            scale_chain_dag(10, 5, cross_span=0)


class TestSeedUniformity:
    def test_every_family_accepts_a_seed(self):
        # signature uniformity: deterministic families take (and
        # ignore) the seed the random ones require
        assert sorted(chain_graph(5, seed=3).edges()) == sorted(
            chain_graph(5).edges())
        assert antichain_graph(4, seed=3).num_edges == 0
