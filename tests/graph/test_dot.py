"""Unit tests for Graphviz DOT export."""

from repro.core.stratification import stratify
from repro.core.stratified import stratified_chain_cover
from repro.graph.digraph import DiGraph
from repro.graph.dot import chains_to_dot, stratification_to_dot, to_dot


class TestToDot:
    def test_all_nodes_and_edges_present(self, paper_graph):
        dot = to_dot(paper_graph)
        assert dot.startswith("digraph G {")
        for node in paper_graph.nodes():
            assert f'"{node}"' in dot
        assert '"a" -> "b";' in dot
        assert dot.rstrip().endswith("}")

    def test_quoting(self):
        g = DiGraph.from_edges([('say "hi"', "b")])
        dot = to_dot(g)
        assert r'"say \"hi\""' in dot

    def test_custom_name(self):
        g = DiGraph()
        assert to_dot(g, name="bom").startswith("digraph bom {")


class TestStratificationDot:
    def test_one_rank_row_per_level(self, paper_graph):
        strat = stratify(paper_graph)
        dot = stratification_to_dot(paper_graph, strat)
        assert dot.count("rank=same") == strat.height
        assert "/* V1 */" in dot and "/* V4 */" in dot


class TestChainsDot:
    def test_chain_links_are_emphasised(self, paper_graph):
        cover = stratified_chain_cover(paper_graph)
        dot = chains_to_dot(paper_graph, cover)
        assert dot.count("penwidth=2.5") == sum(
            len(chain) - 1 for chain in cover.chains)
        assert "constraint=false" in dot

    def test_closure_links_are_dashed(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        from repro.core.chains import ChainDecomposition
        cover = ChainDecomposition(chains=[[0, 2], [1]])
        dot = chains_to_dot(g, cover)
        assert "style=dashed" in dot

    def test_edge_links_are_solid(self, paper_graph):
        cover = stratified_chain_cover(paper_graph)
        dot = chains_to_dot(paper_graph, cover)
        assert "style=solid" in dot
