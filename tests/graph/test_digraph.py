"""Unit tests for the DiGraph substrate."""

import pytest
from hypothesis import given

from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    DuplicateNodeError,
    EdgeExistsError,
    EdgeNotFoundError,
    NodeNotFoundError,
)

from tests.conftest import small_digraphs


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert len(g) == 0

    def test_add_node_returns_dense_ids_in_order(self):
        g = DiGraph()
        assert g.add_node("x") == 0
        assert g.add_node("y") == 1
        assert g.node_at(0) == "x"
        assert g.node_id("y") == 1

    def test_duplicate_node_rejected(self):
        g = DiGraph()
        g.add_node("x")
        with pytest.raises(DuplicateNodeError):
            g.add_node("x")

    def test_ensure_node_is_idempotent(self):
        g = DiGraph()
        first = g.ensure_node("x")
        second = g.ensure_node("x")
        assert first == second
        assert g.num_nodes == 1

    def test_add_edge_requires_existing_nodes(self):
        g = DiGraph()
        g.add_node("x")
        with pytest.raises(NodeNotFoundError):
            g.add_edge("x", "missing")

    def test_duplicate_edge_rejected(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(EdgeExistsError):
            g.add_edge("a", "b")

    def test_self_loop_is_a_noop(self):
        g = DiGraph()
        g.add_node("x")
        g.add_edge("x", "x")
        assert g.num_edges == 0

    def test_from_edges_dedupes_and_adds_isolated_nodes(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "b"), ("c", "c")],
                               nodes=["z"])
        assert g.num_edges == 1
        assert "z" in g
        assert "c" in g

    def test_mixed_hashable_node_types(self):
        g = DiGraph.from_edges([((1, 2), "str"), ("str", 42)])
        assert g.has_edge((1, 2), "str")
        assert g.has_edge("str", 42)


class TestQueries:
    def test_successors_and_predecessors(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        assert sorted(g.successors("a")) == ["b", "c"]
        assert sorted(g.predecessors("c")) == ["a", "b"]
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2

    def test_has_edge_on_unknown_nodes_is_false(self):
        g = DiGraph.from_edges([("a", "b")])
        assert not g.has_edge("a", "zzz")
        assert not g.has_edge("zzz", "b")

    def test_has_edge_ids(self):
        g = DiGraph.from_edges([("a", "b")])
        assert g.has_edge_ids(g.node_id("a"), g.node_id("b"))
        assert not g.has_edge_ids(g.node_id("b"), g.node_id("a"))

    def test_node_id_raises_on_unknown(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.node_id("nope")

    def test_iteration_and_contains(self):
        g = DiGraph.from_edges([("a", "b")])
        assert set(g) == {"a", "b"}
        assert "a" in g and "q" not in g

    def test_repr_mentions_sizes(self):
        g = DiGraph.from_edges([("a", "b")])
        assert "nodes=2" in repr(g)
        assert "edges=1" in repr(g)


class TestRemoval:
    def test_remove_edge(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_edge("b", "c")
        assert g.num_edges == 1
        assert "a" in g                       # endpoints survive

    def test_remove_missing_edge_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(EdgeNotFoundError, match="'b'.*'a'"):
            g.remove_edge("b", "a")
        with pytest.raises(NodeNotFoundError):
            g.remove_edge("a", "zzz")

    def test_removed_edge_can_be_reinserted(self):
        g = DiGraph.from_edges([("a", "b")])
        g.remove_edge("a", "b")
        g.add_edge("a", "b")                  # no EdgeExistsError
        assert g.has_edge("a", "b")
        assert g.num_edges == 1

    def test_remove_node_detaches_incident_edges(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        g.remove_node("b")
        assert "b" not in g
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge("a", "c")
        assert g.successors("a") == ["c"]
        assert g.predecessors("c") == ["a"]

    def test_remove_unknown_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("nope")

    def test_remove_node_compacts_ids(self):
        """Dense ids stay dense: the last node's id is recycled into
        the removed slot (documented — ids of other nodes may change)."""
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
        g.remove_node("b")
        assert sorted(g.node_id(n) for n in g.nodes()) == [0, 1, 2]
        assert g.node_at(g.node_id("d")) == "d"
        assert g.has_edge("c", "d")

    @given(small_digraphs())
    def test_remove_every_edge_then_every_node_empties(self, g):
        for tail, head in list(g.edges()):
            g.remove_edge(tail, head)
        assert g.num_edges == 0
        for node in list(g.nodes()):
            g.remove_node(node)
        assert g.num_nodes == 0
        assert len(g) == 0


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph.from_edges([("a", "b")])
        h = g.copy()
        h.ensure_node("c")
        h.add_edge("b", "c")
        assert g.num_nodes == 2
        assert h.num_edges == 2
        assert g.num_edges == 1

    def test_reversed_flips_every_edge(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        r = g.reversed()
        assert r.has_edge("b", "a")
        assert r.has_edge("c", "b")
        assert r.num_edges == g.num_edges

    def test_subgraph_induces_edges(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        s = g.subgraph(["a", "c"])
        assert s.num_nodes == 2
        assert s.has_edge("a", "c")
        assert not s.has_edge("a", "b")

    def test_subgraph_unknown_node_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(NodeNotFoundError):
            g.subgraph(["a", "nope"])

    @given(small_digraphs())
    def test_double_reverse_roundtrips(self, g):
        rr = g.reversed().reversed()
        assert sorted(map(tuple, rr.edges())) == sorted(
            map(tuple, g.edges()))
        assert rr.num_edges == g.num_edges

    @given(small_digraphs())
    def test_copy_preserves_structure(self, g):
        h = g.copy()
        assert sorted(map(tuple, h.edges())) == sorted(
            map(tuple, g.edges()))
        assert h.nodes() == g.nodes()


class TestDenseConstruction:
    def test_dense_equals_add_node_loop(self):
        bulk = DiGraph.dense(5)
        loop = DiGraph()
        for v in range(5):
            loop.add_node(v)
        assert bulk.nodes() == loop.nodes()
        assert bulk.num_nodes == 5
        assert bulk.num_edges == 0
        assert all(bulk.node_id(v) == v for v in range(5))

    def test_dense_rejects_negative(self):
        with pytest.raises(ValueError):
            DiGraph.dense(-1)

    def test_dense_zero_is_empty(self):
        g = DiGraph.dense(0)
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_add_edge_ids_matches_add_edge(self):
        by_ids = DiGraph.dense(4)
        by_ids.add_edge_ids(0, 1)
        by_ids.add_edge_ids(1, 2)
        by_ids.add_edge_ids(1, 1)       # self-loop: stored nowhere
        by_obj = DiGraph.dense(4)
        by_obj.add_edge(0, 1)
        by_obj.add_edge(1, 2)
        assert sorted(by_ids.edges()) == sorted(by_obj.edges())
        assert by_ids.num_edges == 2
        assert by_ids.has_edge_ids(0, 1)
        assert not by_ids.has_edge_ids(1, 1)

    def test_add_edge_ids_rejects_duplicates(self):
        g = DiGraph.dense(2)
        g.add_edge_ids(0, 1)
        with pytest.raises(EdgeExistsError):
            g.add_edge_ids(0, 1)

    def test_dense_graph_interoperates_with_node_objects(self):
        g = DiGraph.dense(3)
        g.add_edge_ids(0, 2)
        assert g.successors(0) == [2]
        assert g.predecessors(2) == [0]
        g.remove_edge(0, 2)
        assert g.num_edges == 0
