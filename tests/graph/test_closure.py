"""Unit tests for the bitset transitive closure."""

import networkx as nx
import pytest
from hypothesis import given

from repro.graph.closure import (
    ancestors_bitsets,
    count_closure_edges,
    descendants_bitsets,
    reachable,
    transitive_closure_pairs,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import NotADAGError

from tests.conftest import bfs_reachable, small_dags


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestDescendants:
    def test_paper_graph_examples(self, paper_graph):
        bits = descendants_bitsets(paper_graph)
        a = paper_graph.node_id("a")
        e = paper_graph.node_id("e")
        assert (bits[a] >> e) & 1
        assert not (bits[e] >> a) & 1

    def test_reflexive_flag(self):
        g = DiGraph.from_edges([("a", "b")])
        strict = descendants_bitsets(g)
        reflexive = descendants_bitsets(g, reflexive=True)
        a = g.node_id("a")
        assert not (strict[a] >> a) & 1
        assert (reflexive[a] >> a) & 1

    def test_rejects_cycles(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            descendants_bitsets(g)

    @given(small_dags())
    def test_matches_networkx_closure(self, g):
        ours = transitive_closure_pairs(g)
        theirs = set(nx.transitive_closure(to_networkx(g)).edges())
        assert ours == theirs


class TestAncestors:
    @given(small_dags())
    def test_ancestors_mirror_descendants(self, g):
        desc = descendants_bitsets(g)
        anc = ancestors_bitsets(g)
        n = g.num_nodes
        for u in range(n):
            for v in range(n):
                assert ((desc[u] >> v) & 1) == ((anc[v] >> u) & 1)

    def test_reflexive_flag(self):
        g = DiGraph.from_edges([("a", "b")])
        bits = ancestors_bitsets(g, reflexive=True)
        b = g.node_id("b")
        assert (bits[b] >> b) & 1


class TestReachable:
    def test_reflexive(self):
        g = DiGraph()
        g.add_node("x")
        assert reachable(g, "x", "x")

    @given(small_dags(min_nodes=1))
    def test_agrees_with_oracle(self, g):
        nodes = g.nodes()
        for u in nodes[:5]:
            for v in nodes[:5]:
                assert reachable(g, u, v) == bfs_reachable(g, u, v)


class TestCount:
    def test_chain_count(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        # pairs: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3)
        assert count_closure_edges(g) == 6

    @given(small_dags())
    def test_count_matches_pairs(self, g):
        assert count_closure_edges(g) == len(transitive_closure_pairs(g))
