"""Unit tests for the bit-vector helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.bits import bits_to_list, iter_bits


def test_zero_has_no_bits():
    assert list(iter_bits(0)) == []


def test_known_value():
    assert bits_to_list(0b101001) == [0, 3, 5]


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_round_trip(positions):
    value = 0
    for p in positions:
        value |= 1 << p
    assert bits_to_list(value) == sorted(positions)


@given(st.integers(min_value=0, max_value=2 ** 128))
def test_count_matches_bit_count(value):
    assert len(bits_to_list(value)) == value.bit_count()
