"""Unit tests for Tarjan SCC and condensation."""

import networkx as nx
from hypothesis import given

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.topology import is_dag

from tests.conftest import bfs_reachable, small_digraphs


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from(graph.edges())
    return nxg


class TestTarjan:
    def test_single_cycle_is_one_component(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert set(components[0]) == {"a", "b", "c"}

    def test_dag_gives_singletons(self, paper_graph):
        components = strongly_connected_components(paper_graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == paper_graph.num_nodes

    def test_reverse_topological_output_order(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(g)
        order = {frozenset(c): i for i, c in enumerate(components)}
        # "c" (reachable from all) must appear before "a".
        assert order[frozenset(["c"])] < order[frozenset(["a"])]

    def test_deep_path_does_not_recurse(self):
        # 5000-node path: a recursive Tarjan would blow the stack.
        g = DiGraph.from_edges([(i, i + 1) for i in range(5000)])
        assert len(strongly_connected_components(g)) == 5001

    @given(small_digraphs())
    def test_matches_networkx(self, g):
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {frozenset(c)
                  for c in nx.strongly_connected_components(to_networkx(g))}
        assert ours == theirs


class TestCondensation:
    def test_condensation_is_acyclic(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("b", "c"),
                                ("c", "d"), ("d", "c")])
        cond = condense(g)
        assert is_dag(cond.dag)
        assert cond.num_components == 2
        assert cond.dag.num_edges == 1

    def test_members_partition_nodes(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("c", "a")])
        cond = condense(g)
        flattened = [n for members in cond.members for n in members]
        assert sorted(flattened) == ["a", "b", "c"]
        for node in g:
            assert node in cond.members[cond.component_of[node]]

    def test_same_component_and_representative(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("c", "a")])
        cond = condense(g)
        assert cond.same_component("a", "b")
        assert not cond.same_component("a", "c")
        assert cond.representative("a") == cond.representative("b")

    def test_no_duplicate_condensed_edges(self):
        g = DiGraph.from_edges([("a", "c"), ("b", "c"), ("a", "b"),
                                ("b", "a")])
        cond = condense(g)
        # Both a->c and b->c map to the same condensed edge.
        assert cond.dag.num_edges == 1

    @given(small_digraphs())
    def test_condensation_preserves_reachability(self, g):
        cond = condense(g)
        nodes = g.nodes()
        for u in nodes:
            for v in nodes:
                expected = bfs_reachable(g, u, v)
                cu, cv = cond.component_of[u], cond.component_of[v]
                got = cu == cv or bfs_reachable(cond.dag, cu, cv)
                assert expected == got, (u, v)


class TestDagFastPath:
    def test_dag_fast_path_matches_tarjan_exactly(self, monkeypatch):
        """On a DAG the postorder fast path must reproduce the full
        algorithm's component order bit for bit (downstream chain
        numbering depends on it)."""
        from repro.graph import scc as scc_module
        from repro.graph.generators import semi_random_dag
        graph = semi_random_dag(80, 60, seed=5)
        fast = scc_module._dag_singleton_ids(graph)
        assert fast is not None
        # force the full Tarjan sweep and compare component orders
        monkeypatch.setattr(scc_module, "_dag_singleton_ids",
                            lambda g: None)
        assert scc_module._scc_ids(graph) == fast

    def test_cyclic_graph_falls_back_to_tarjan(self):
        from repro.graph import scc as scc_module
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert scc_module._dag_singleton_ids(graph) is None
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3]]
