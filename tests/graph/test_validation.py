"""Unit tests for the structural validators."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphError, NotADAGError
from repro.graph.validation import (
    check_acyclic,
    check_consistency,
    check_topological_order,
)


class TestConsistency:
    def test_clean_graph_passes(self, paper_graph):
        check_consistency(paper_graph)

    def test_detects_broken_mirror(self):
        g = DiGraph.from_edges([("a", "b")])
        g.predecessor_ids(g.node_id("b")).clear()  # corrupt on purpose
        with pytest.raises(GraphError):
            check_consistency(g)

    def test_detects_duplicate_successor(self):
        g = DiGraph.from_edges([("a", "b")])
        g.successor_ids(g.node_id("a")).append(g.node_id("b"))
        with pytest.raises(GraphError):
            check_consistency(g)


class TestTopologicalOrderCheck:
    def test_valid_order(self):
        g = DiGraph.from_edges([("a", "b")])
        check_topological_order(g, ["a", "b"])

    def test_reversed_order_fails(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            check_topological_order(g, ["b", "a"])

    def test_missing_node_fails(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            check_topological_order(g, ["a"])

    def test_duplicate_node_fails(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            check_topological_order(g, ["a", "a"])


class TestAcyclicCheck:
    def test_dag_passes(self, paper_graph):
        check_acyclic(paper_graph)

    def test_cycle_raises(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            check_acyclic(g)
