"""Unit tests for edge-list serialisation."""

import io

import pytest
from hypothesis import given

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError
from repro.graph.io import dumps, loads, read_edge_list, write_edge_list

from tests.conftest import small_digraphs


class TestRoundTrip:
    def test_string_round_trip(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)], nodes=[5])
        h = loads(dumps(g))
        assert sorted(h.edges()) == sorted(g.edges())
        assert h.num_nodes == g.num_nodes

    def test_file_round_trip(self, tmp_path):
        g = DiGraph.from_edges([(0, 1), (2, 0)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert sorted(h.edges()) == sorted(g.edges())

    def test_handle_round_trip(self):
        g = DiGraph.from_edges([(0, 1)])
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        h = read_edge_list(buffer)
        assert sorted(h.edges()) == sorted(g.edges())

    def test_string_labels(self):
        text = "alpha beta\nbeta gamma\n"
        g = loads(text, int_labels=False)
        assert g.has_edge("alpha", "beta")
        assert g.has_edge("beta", "gamma")

    @given(small_digraphs())
    def test_round_trip_preserves_isolated_nodes(self, g):
        h = loads(dumps(g))
        assert h.num_nodes == g.num_nodes
        assert sorted(map(tuple, h.edges())) == sorted(
            map(tuple, g.edges()))

    def test_non_dense_labels_round_trip_exactly(self):
        """``remove_node`` punches a hole in the dense 0..n-1 label
        range; the rewrite must not resurrect the node (the old ``n``
        header did) nor drop isolated survivors."""
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        g.remove_node(1)                     # isolates 0, hole at 1
        h = loads(dumps(g))
        assert sorted(h.nodes()) == sorted(g.nodes())
        assert 1 not in h
        assert 0 in h                        # isolated survivor kept
        assert sorted(map(tuple, h.edges())) == sorted(
            map(tuple, g.edges()))

    def test_string_label_graphs_round_trip(self):
        g = DiGraph.from_edges([("alpha", "beta")], nodes=["lone"])
        h = loads(dumps(g), int_labels=False)
        assert sorted(h.nodes()) == sorted(g.nodes())
        assert h.has_edge("alpha", "beta")


class TestParsing:
    def test_comments_and_blank_lines_skipped(self):
        g = loads("# hello\n\n0 1\n")
        assert g.num_edges == 1

    def test_duplicate_edges_collapsed(self):
        g = loads("0 1\n0 1\n")
        assert g.num_edges == 1

    def test_self_loop_dropped(self):
        g = loads("3 3\n")
        assert g.num_edges == 0
        assert 3 in g

    def test_bad_token_count(self):
        with pytest.raises(GraphFormatError) as excinfo:
            loads("0 1 2\n")
        assert excinfo.value.line_number == 1

    def test_non_integer_label(self):
        with pytest.raises(GraphFormatError):
            loads("a b\n")

    def test_node_declaration_lines(self):
        g = loads("v 7\n0 1\n")
        assert 7 in g
        assert g.num_nodes == 3
        with pytest.raises(GraphFormatError):
            loads("v\n")
        with pytest.raises(GraphFormatError):
            loads("v x\n")                   # int_labels: must parse
        assert "x" in loads("v x\n", int_labels=False)

    def test_bad_node_count_line(self):
        with pytest.raises(GraphFormatError):
            loads("n x\n")
        with pytest.raises(GraphFormatError):
            loads("n -3\n")
        with pytest.raises(GraphFormatError):
            loads("n 1 2\n")

    def test_error_reports_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            loads("0 1\nbroken line here\n")
        assert excinfo.value.line_number == 2


class TestIterEdges:
    def test_streams_pairs_verbatim(self, tmp_path):
        from repro.graph.io import iter_edges
        path = tmp_path / "edges.txt"
        path.write_text("# comment\nn 4\n0 1\n1 2\nv 3\n0 1\n2 2\n")
        # duplicates and self-loops are yielded as written; node and
        # count declarations are not edges
        assert list(iter_edges(path)) == [(0, 1), (1, 2), (0, 1),
                                          (2, 2)]

    def test_accepts_open_handles_and_str_labels(self):
        from repro.graph.io import iter_edges
        handle = io.StringIO("a b\nb c\n")
        assert list(iter_edges(handle, int_labels=False)) == [
            ("a", "b"), ("b", "c")]

    def test_agrees_with_read_edge_list(self, tmp_path):
        from repro.graph.io import iter_edges
        graph = DiGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        streamed = DiGraph()
        for tail, head in iter_edges(path):
            streamed.ensure_node(tail)
            streamed.ensure_node(head)
            if tail != head and not streamed.has_edge(tail, head):
                streamed.add_edge(tail, head)
        reread = read_edge_list(path)
        assert sorted(streamed.edges()) == sorted(reread.edges())

    def test_bad_line_reports_line_number(self, tmp_path):
        from repro.graph.io import iter_edges
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n0 1 2\n")
        with pytest.raises(GraphFormatError, match="line 2"):
            list(iter_edges(path))

    def test_lazy_no_read_before_iteration(self, tmp_path):
        from repro.graph.io import iter_edges
        iterator = iter_edges(tmp_path / "missing.txt")
        with pytest.raises(FileNotFoundError):
            next(iterator)
