"""Unit tests for the exception hierarchy."""

import pytest

from repro.graph.errors import (
    DuplicateNodeError,
    EdgeExistsError,
    GraphError,
    GraphFormatError,
    InvalidChainError,
    NodeNotFoundError,
    NotADAGError,
)


class TestHierarchy:
    def test_everything_is_a_graph_error(self):
        for exc_type in (NodeNotFoundError, DuplicateNodeError,
                         EdgeExistsError, NotADAGError,
                         InvalidChainError, GraphFormatError):
            assert issubclass(exc_type, GraphError)

    def test_dual_inheritance_for_interop(self):
        # Callers used to KeyError/ValueError semantics keep working.
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(NotADAGError, ValueError)
        assert issubclass(GraphFormatError, ValueError)


class TestMessages:
    def test_node_not_found_str_is_readable(self):
        # Plain KeyError would repr the args tuple; ours reads well.
        error = NodeNotFoundError("missing")
        assert str(error) == "node 'missing' is not in the graph"
        assert error.node == "missing"
        assert error.role is None

    def test_node_not_found_role_names_the_operand(self):
        error = NodeNotFoundError("missing", role="target")
        assert str(error) == "target node 'missing' is not in the graph"
        assert error.role == "target"
        assert error.args == ("missing",)     # KeyError interop intact

    def test_edge_exists_carries_endpoints(self):
        error = EdgeExistsError("a", "b")
        assert error.tail == "a" and error.head == "b"
        assert "('a', 'b')" in str(error)

    def test_not_a_dag_carries_cycle(self):
        error = NotADAGError(cycle=["a", "b"])
        assert error.cycle == ["a", "b"]
        assert NotADAGError().cycle is None

    def test_format_error_line_numbers(self):
        error = GraphFormatError("bad token", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7
        assert GraphFormatError("plain").line_number is None

    def test_duplicate_node_message(self):
        assert "already in the graph" in str(DuplicateNodeError("x"))


class TestCatchability:
    def test_one_except_clause_for_the_library(self):
        from repro.graph.digraph import DiGraph
        g = DiGraph()
        with pytest.raises(GraphError):
            g.node_id("missing")
        g.add_node("a")
        with pytest.raises(GraphError):
            g.add_node("a")
