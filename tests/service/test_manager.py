"""Unit tests for the epoch-tagged snapshot manager."""

import pytest

from repro import DiGraph, IndexFormatError, NodeNotFoundError
from repro.core.index import ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.core.protocols import BatchReachability
from repro.graph.errors import NotADAGError
from repro.service import IndexManager, WritesUnsupportedError

from tests.conftest import PAPER_FIG1_EDGES, bfs_reachable


@pytest.fixture
def manager() -> IndexManager:
    return IndexManager.from_graph(DiGraph.from_edges(PAPER_FIG1_EDGES))


class TestProtocol:
    def test_both_backends_satisfy_the_batch_protocol(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        assert isinstance(ChainIndex.build(graph), BatchReachability)
        assert isinstance(DynamicChainIndex.from_graph(graph),
                          BatchReachability)

    def test_dynamic_batch_matches_scalar_and_bfs(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = DynamicChainIndex.from_graph(graph)
        nodes = graph.nodes()
        pairs = [(u, v) for u in nodes for v in nodes]
        answers = index.is_reachable_many(pairs)
        for (u, v), answer in zip(pairs, answers):
            assert answer == index.is_reachable(u, v)
            assert answer == bfs_reachable(graph, u, v)

    def test_dynamic_batch_names_the_missing_operand(self):
        index = DynamicChainIndex.from_graph(
            DiGraph.from_edges([("a", "b")]))
        with pytest.raises(NodeNotFoundError) as excinfo:
            index.is_reachable_many([("a", "b"), ("a", "zzz")])
        assert excinfo.value.role == "target"


class TestReads:
    def test_initial_epoch_is_zero(self, manager):
        assert manager.epoch == 0
        assert manager.snapshot.kind == "static"

    def test_query_many_tags_the_epoch(self, manager):
        epoch, answers = manager.query_many([("a", "e"), ("d", "a")])
        assert epoch == 0
        assert answers == [True, False]

    def test_scalar_convenience(self, manager):
        assert manager.is_reachable("a", "e") is True
        assert manager.is_reachable("e", "a") is False

    def test_snapshot_graph_matches_answers(self, manager):
        epoch, answers = manager.query_many([("f", "i"), ("i", "f")])
        graph = manager.snapshot.graph
        assert answers == [bfs_reachable(graph, "f", "i"),
                           bfs_reachable(graph, "i", "f")]


class TestWrites:
    def test_write_invisible_until_swap(self, manager):
        manager.add_edge("e", "zz", create=True)
        assert manager.pending_writes == 1
        # the published snapshot still answers for epoch 0
        with pytest.raises(NodeNotFoundError):
            manager.query_many([("a", "zz")])
        snapshot = manager.swap()
        assert snapshot.epoch == 1
        assert manager.pending_writes == 0
        assert manager.query_many([("a", "zz")]) == (1, [True])

    def test_duplicate_edge_is_reported_not_raised(self, manager):
        assert manager.add_edge("a", "b") is False
        assert manager.pending_writes == 0

    def test_unknown_endpoint_without_create(self, manager):
        with pytest.raises(NodeNotFoundError):
            manager.add_edge("a", "zz")

    def test_cycle_rejected(self, manager):
        with pytest.raises(NotADAGError):
            manager.add_edge("e", "a")

    def test_rejected_edge_with_create_leaves_no_orphan_state(
            self, manager):
        """A rejection can only involve pre-existing endpoints, so
        ``create=True`` must never leave behind nodes the write
        accounting (and hence swap/epoch) does not know about."""
        nodes_before = manager._shadow.graph.num_nodes
        with pytest.raises(NotADAGError):
            manager.add_edge("e", "a", create=True)
        assert manager.add_edge("a", "b", create=True) is False
        assert manager.pending_writes == 0
        assert manager._shadow.graph.num_nodes == nodes_before

    def test_add_node(self, manager):
        assert manager.add_node("lonely") is True
        assert manager.add_node("lonely") is False
        manager.swap()
        assert manager.query_many([("lonely", "lonely")]) == (1, [True])

    def test_cyclic_graph_serves_read_only(self):
        cyclic = DiGraph.from_edges([("a", "b"), ("b", "a"),
                                     ("b", "c")])
        manager = IndexManager.from_graph(cyclic)
        assert manager.writable is False
        assert manager.query_many([("a", "c")]) == (0, [True])
        with pytest.raises(WritesUnsupportedError):
            manager.add_edge("c", "d", create=True)
        assert manager.swap().epoch == 0     # no-op, no crash


class TestSwap:
    def test_swap_without_writes_is_a_noop(self, manager):
        before = manager.snapshot
        assert manager.swap() is before

    def test_forced_swap_bumps_the_epoch(self, manager):
        assert manager.swap(force=True).epoch == 1
        assert manager.swap_count == 1

    def test_old_snapshot_keeps_answering_after_swap(self, manager):
        old = manager.snapshot
        manager.add_edge("e", "x", create=True)
        manager.swap()
        # a reader that grabbed the old snapshot is not disturbed
        assert old.backend.is_reachable_many([("a", "e")]) == [True]
        with pytest.raises(NodeNotFoundError):
            old.backend.is_reachable_many([("a", "x")])

    def test_auto_swap_spawns_one_thread_for_concurrent_writers(
            self, manager):
        """Racing writers must not double-spawn the background swap."""
        import threading

        release = threading.Event()
        calls = []

        def slow_swap(force=False):
            calls.append(1)
            release.wait(timeout=10.0)

        manager.swap = slow_swap             # instance attr shadows method
        manager._auto_swap_after = 1
        manager._pending = 1
        writers = [threading.Thread(target=manager._maybe_auto_swap)
                   for _ in range(8)]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=10.0)
        release.set()
        manager.close()
        assert len(calls) == 1

    def test_auto_swap_after_threshold(self, manager):
        manager._auto_swap_after = 3
        for n in range(3):
            manager.add_edge("e", f"auto-{n}", create=True)
        manager.close()                      # join the background swap
        assert manager.swap_count >= 1
        epoch, answers = manager.query_many([("a", "auto-0")])
        assert answers == [True]

    def test_stats_shape(self, manager):
        stats = manager.stats()
        assert stats["epoch"] == 0
        assert stats["writable"] is True
        assert stats["nodes"] == 9
        assert stats["mode"] == "static"


class TestDynamicMode:
    def test_writes_visible_immediately_with_epoch_bump(self):
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES), mode="dynamic")
        assert manager.query_many([("a", "e")]) == (0, [True])
        manager.add_edge("e", "zz", create=True)
        epoch, answers = manager.query_many([("a", "zz")])
        assert answers == [True]
        assert epoch == 1                    # one write, one bump

    def test_dynamic_swap_reminimises_chains(self):
        manager = IndexManager.from_graph(
            DiGraph.from_edges([("a", "b")]), mode="dynamic")
        for n in range(4):
            manager.add_edge("b", f"tail-{n}", create=True)
        chains_before = manager.snapshot.backend.num_chains
        snapshot = manager.swap()
        assert snapshot.backend.num_chains <= chains_before
        assert snapshot.epoch == manager.epoch

    def test_dynamic_mode_rejects_cyclic_input(self):
        with pytest.raises(NotADAGError):
            IndexManager.from_graph(
                DiGraph.from_edges([("a", "b"), ("b", "a")]),
                mode="dynamic")


class TestFromIndexFile:
    def test_serves_a_persisted_index_read_only(self, tmp_path):
        from repro.core.persistence import save_index
        path = tmp_path / "paper.idx"
        save_index(ChainIndex.build(DiGraph.from_edges(PAPER_FIG1_EDGES)),
                   path)
        manager = IndexManager.from_index_file(path)
        assert manager.query_many([("a", "e"), ("e", "a")]) == \
            (0, [True, False])
        assert manager.writable is False
        assert manager.snapshot.graph is None
        with pytest.raises(WritesUnsupportedError):
            manager.add_edge("a", "q", create=True)

    def test_corrupt_file_fails_loudly(self, tmp_path):
        from repro.core.persistence import save_index
        path = tmp_path / "paper.idx"
        save_index(ChainIndex.build(DiGraph.from_edges(PAPER_FIG1_EDGES)),
                   path)
        text = path.read_text(encoding="utf-8")
        mangled = text.replace('"rank_of":[', '"rank_of":[0,', 1)
        path.write_text(mangled, encoding="utf-8")
        with pytest.raises(IndexFormatError):
            IndexManager.from_index_file(path)
