"""Tests for the request-capture journal (``repro.service.capture``).

Unit tests drive :class:`RequestCapture` directly; the integration
tests attach one to a live threaded service and read the journal the
shutdown flush wrote — the same path ``serve --capture`` exercises.
"""

import json

import pytest

from repro import DiGraph
from repro.obs import OBS
from repro.service import (
    IndexManager,
    RequestCapture,
    ServiceClient,
    load_journal,
    start_in_thread,
)
from repro.service.capture import CAPTURE_KIND, CAPTURE_VERSION, \
    CAPTURED_OPS

from tests.conftest import PAPER_FIG1_EDGES


class TestRing:
    def test_capacity_bound_evicts_oldest_and_counts(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson", capacity=3)
        for index in range(5):
            capture.record("query", source=index, target=index + 1)
        assert len(capture) == 3
        assert capture.dropped == 2
        assert capture.seen == capture.sampled == 5
        capture.flush()
        _, records = load_journal(capture.path)
        assert [entry["source"] for entry in records] == [2, 3, 4]

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            RequestCapture(tmp_path / "j", capacity=0)
        with pytest.raises(ValueError):
            RequestCapture(tmp_path / "j", sample=0.0)
        with pytest.raises(ValueError):
            RequestCapture(tmp_path / "j", sample=1.5)

    def test_none_fields_are_dropped_and_class_is_renamed(
            self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson")
        capture.record("query", klass="positive", source="a",
                       target="b", node=None)
        capture.flush()
        _, (entry,) = load_journal(capture.path)
        assert entry["class"] == "positive"
        assert "node" not in entry
        assert "klass" not in entry

    def test_timestamps_are_monotonic_offsets(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson")
        for _ in range(10):
            capture.record("query", source="a", target="b")
        stamps = [entry["ts_ms"] for entry in capture._ring]
        assert stamps == sorted(stamps)
        assert all(stamp >= 0.0 for stamp in stamps)


class TestSampling:
    def test_sampling_is_deterministic_per_seed(self, tmp_path):
        kept = []
        for run in range(2):
            capture = RequestCapture(tmp_path / f"j{run}.ndjson",
                                     sample=0.5, seed=42)
            for index in range(200):
                capture.record("query", source=index, target=0)
            kept.append([entry["source"]
                         for entry in capture._ring])
        assert kept[0] == kept[1]
        assert 0 < len(kept[0]) < 200

    def test_sampled_counter_tracks_admissions(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson", sample=0.25,
                                 seed=7)
        for index in range(400):
            capture.record("query", source=index, target=0)
        assert capture.seen == 400
        assert capture.sampled == len(capture)
        assert 40 < capture.sampled < 160    # ~100, generous bounds


class TestPersistence:
    def test_flush_roundtrip_and_header(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson", capacity=8,
                                 sample=1.0)
        capture.record("query", klass="positive", source="a",
                       target="e", epoch=0, latency_ms=0.2, ok=True)
        capture.record("add_edge", source="x", target="y", create=True,
                       ok=True, epoch=0, latency_ms=0.5)
        path = capture.close()
        header, records = load_journal(path)
        assert header["kind"] == CAPTURE_KIND
        assert header["v"] == CAPTURE_VERSION
        assert header["records"] == len(records) == 2
        assert header["capacity"] == 8
        assert records[0]["op"] == "query"
        assert records[1]["create"] is True

    def test_flush_is_atomic(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson")
        capture.record("query", source="a", target="b")
        capture.flush()
        assert not (tmp_path / "j.ndjson.tmp").exists()

    def test_load_journal_tolerates_headerless_ndjson(self, tmp_path):
        path = tmp_path / "hand.ndjson"
        path.write_text('{"op":"query","source":"a","target":"b"}\n'
                        "\n"
                        '{"op":"ping"}\n')
        header, records = load_journal(path)
        assert header == {}
        assert [entry["op"] for entry in records] == ["query", "ping"]

    def test_load_journal_rejects_non_objects(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_journal(path)

    def test_describe_counters(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson", capacity=2)
        for _ in range(3):
            capture.record("query", source="a", target="b")
        info = capture.describe()
        assert info["records"] == 2
        assert info["seen"] == info["sampled"] == 3
        assert info["dropped"] == 1


class TestObsCounters:
    def test_record_feeds_the_registry_when_enabled(self, tmp_path):
        capture = RequestCapture(tmp_path / "j.ndjson", capacity=1)
        OBS.reset()
        OBS.enable()
        try:
            capture.record("query", source="a", target="b")
            capture.record("query", source="b", target="c")
            assert OBS.counters["service/capture_records"] == 2
            assert OBS.counters["service/capture_dropped"] == 1
        finally:
            OBS.disable()
            OBS.reset()


class TestServerIntegration:
    def test_journal_covers_queries_batches_and_writes(self, tmp_path):
        journal = tmp_path / "served.ndjson"
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        with start_in_thread(manager, capture=str(journal)) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                client.query("a", "e")
                client.query_batch([("a", "e"), ("e", "a")])
                client.add_edge("z1", "z2", create=True)
                client.ping()                 # not a captured verb
        header, records = load_journal(journal)
        assert header["records"] == 3
        by_op = {entry["op"]: entry for entry in records}
        assert set(by_op) == {"query", "query_batch", "add_edge"}
        assert by_op["query"]["class"] == "positive"
        assert by_op["query"]["source"] == "a"
        assert by_op["query_batch"]["pairs"] == [["a", "e"],
                                                 ["e", "a"]]
        assert by_op["add_edge"]["create"] is True
        assert all("latency_ms" in entry for entry in records)
        assert all(entry["ok"] for entry in records)
        assert "ping" not in CAPTURED_OPS

    def test_error_responses_are_journaled_with_error_class(
            self, tmp_path):
        journal = tmp_path / "errors.ndjson"
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        with start_in_thread(manager, capture=str(journal)) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                with pytest.raises(Exception):
                    client.query("nope", "also-nope")
        _, (entry,) = load_journal(journal)
        assert entry["class"] == "error"
        assert entry["ok"] is False

    def test_capture_object_can_be_shared_with_the_test(
            self, tmp_path):
        capture = RequestCapture(tmp_path / "shared.ndjson",
                                 capacity=4)
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        with start_in_thread(manager, capture=capture) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                for _ in range(6):
                    client.query("a", "e")
        assert len(capture) == 4               # ring bound held
        assert capture.dropped == 2
        assert capture.path.exists()           # shutdown flushed
