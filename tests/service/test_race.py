"""Concurrency races: queries vs ``add_edge`` vs snapshot swap.

The serving layer's central claim is epoch-exactness: every answer is
correct for the graph version its epoch names, even while writes land
and snapshots swap underneath the readers.  These tests hammer the
manager (and the full TCP stack) from multiple threads, record every
``(epoch, pair, answer)`` observed, and afterwards BFS-validate each
answer against the exact graph version that epoch claims.
"""

import threading
import time

from repro import DiGraph
from repro.service import IndexManager, ServiceClient, start_in_thread

from tests.conftest import PAPER_FIG1_EDGES, bfs_reachable

# pairs over the base Fig. 1 nodes, valid at every epoch; ("d", "i")
# and ("c", "i") flip from False to True when the writer adds d -> i
BASE_PAIRS = [
    ("a", "e"), ("e", "a"), ("f", "i"), ("d", "i"),
    ("c", "i"), ("g", "e"), ("i", "a"), ("b", "d"),
]


def graph_at(edge_log: dict, epoch: int) -> DiGraph:
    """Reconstruct the graph version a given epoch names.

    ``edge_log`` maps each epoch to the edges that became visible *at*
    that epoch; version E is the base graph plus every edge whose
    epoch is <= E.
    """
    graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
    for visible_at in sorted(edge_log):
        if visible_at > epoch:
            break
        for tail, head in edge_log[visible_at]:
            for node in (tail, head):
                if node not in graph:
                    graph.add_node(node)
            graph.add_edge(tail, head)
    return graph


def validate(observations, edge_log) -> set:
    """BFS-check every observation; returns the set of epochs seen."""
    graphs = {}
    epochs_seen = set()
    for epoch, pair, answer in observations:
        if epoch not in graphs:
            graphs[epoch] = graph_at(edge_log, epoch)
        assert answer == bfs_reachable(graphs[epoch], *pair), (
            f"epoch {epoch}: {pair} answered {answer}, but BFS on the "
            f"graph version that epoch names disagrees")
        epochs_seen.add(epoch)
    return epochs_seen


class TestManagerRace:
    def test_static_swaps_never_tear_reader_answers(self):
        """Readers race 6 rebuild-and-swaps; every batch validates."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        edge_log: dict = {}
        observations = []
        lock = threading.Lock()
        done = threading.Event()
        failures = []

        def writer():
            try:
                for round_number in range(6):
                    batch = [("e", f"w{round_number}")]
                    if round_number == 2:
                        batch.append(("d", "i"))
                    for tail, head in batch:
                        manager.add_edge(tail, head, create=True)
                    snapshot = manager.swap()
                    # everything pending became visible at this epoch
                    edge_log[snapshot.epoch] = batch
                    time.sleep(0.01)     # let readers observe this epoch
            except BaseException as exc:  # propagated to the main thread
                failures.append(exc)
            finally:
                done.set()

        def reader():
            local = []
            try:
                while not done.is_set():
                    epoch, answers = manager.query_many(BASE_PAIRS)
                    local.extend(
                        (epoch, pair, answer)
                        for pair, answer in zip(BASE_PAIRS, answers))
            except BaseException as exc:
                failures.append(exc)
            with lock:
                observations.extend(local)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in readers:
            thread.join(timeout=60)
        assert not failures, failures
        assert manager.epoch == 6
        assert observations
        epochs_seen = validate(observations, edge_log)
        # the readers genuinely overlapped the swaps: answers from
        # more than one graph version were recorded
        assert len(epochs_seen) >= 2, (
            f"readers only ever saw epochs {epochs_seen}; the race "
            "did not exercise a swap")

    def test_dynamic_writes_are_epoch_exact(self):
        """In dynamic mode every write bumps the epoch; readers must
        see each epoch's exact graph, never a half-applied write."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES), mode="dynamic")
        edge_log: dict = {}
        observations = []
        lock = threading.Lock()
        done = threading.Event()
        failures = []

        def writer():
            try:
                for round_number in range(12):
                    if round_number == 4:
                        tail, head = "d", "i"
                        manager.add_edge(tail, head)
                    else:
                        tail, head = "e", f"w{round_number}"
                        manager.add_edge(tail, head, create=True)
                    edge_log[manager.epoch] = [(tail, head)]
                    time.sleep(0.005)    # let readers observe this epoch
            except BaseException as exc:
                failures.append(exc)
            finally:
                done.set()

        def reader():
            local = []
            try:
                while not done.is_set():
                    epoch, answers = manager.query_many(BASE_PAIRS)
                    local.extend(
                        (epoch, pair, answer)
                        for pair, answer in zip(BASE_PAIRS, answers))
            except BaseException as exc:
                failures.append(exc)
            with lock:
                observations.extend(local)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in readers:
            thread.join(timeout=60)
        assert not failures, failures
        assert manager.epoch == 12
        assert observations
        validate(observations, edge_log)


class TestFullStackRace:
    def test_remote_queries_race_writes_and_reloads(self):
        """The whole pipe — client, server, batcher, cache, manager —
        under one writer client and several query clients."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        edge_log: dict = {}
        observations = []
        lock = threading.Lock()
        done = threading.Event()
        failures = []

        with start_in_thread(manager, port=0, max_wait_us=200,
                             cache_size=256) as handle:
            host, port = handle.address

            def writer():
                try:
                    with ServiceClient(host, port) as client:
                        for round_number in range(5):
                            batch = [("e", f"w{round_number}")]
                            if round_number == 1:
                                batch.append(("d", "i"))
                            for tail, head in batch:
                                client.add_edge(tail, head)
                            epoch = client.reload()
                            edge_log[epoch] = batch
                except BaseException as exc:
                    failures.append(exc)
                finally:
                    done.set()

            def reader():
                local = []
                try:
                    with ServiceClient(host, port) as client:
                        while not done.is_set():
                            for pair in BASE_PAIRS:
                                epoch, answer = client.query(*pair)
                                local.append((epoch, pair, answer))
                            epoch, answers = client.query_batch(BASE_PAIRS)
                            local.extend(
                                (epoch, pair, answer) for pair, answer
                                in zip(BASE_PAIRS, answers))
                except BaseException as exc:
                    failures.append(exc)
                with lock:
                    observations.extend(local)

            readers = [threading.Thread(target=reader) for _ in range(3)]
            writer_thread = threading.Thread(target=writer)
            for thread in readers:
                thread.start()
            writer_thread.start()
            writer_thread.join(timeout=120)
            for thread in readers:
                thread.join(timeout=120)

        assert not failures, failures
        assert manager.epoch == 5
        assert observations
        epochs_seen = validate(observations, edge_log)
        assert len(epochs_seen) >= 2, (
            f"readers only ever saw epochs {epochs_seen}")
