"""ServiceClient reconnect-retry semantics against a flaky server."""

import json
import socket
import threading

import pytest

from repro.service import ServiceClient, ServiceError


class FlakyServer:
    """Accepts connections; drops the first ``drop_first`` of them
    right after reading a request, answers honestly afterwards."""

    def __init__(self, drop_first: int = 1) -> None:
        self._drop_remaining = drop_first
        self.connections = 0
        self.requests: list[dict] = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.host, self.port = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            reader = conn.makefile("rb")
            try:
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    self.requests.append(json.loads(line))
                    if self._drop_remaining > 0:
                        self._drop_remaining -= 1
                        break                    # close mid-call
                    conn.sendall(json.dumps(
                        {"ok": True, "epoch": 0, "reachable": True}
                    ).encode("utf-8") + b"\n")
            finally:
                reader.close()
                conn.close()

    def close(self) -> None:
        self._listener.close()


@pytest.fixture
def flaky():
    server = FlakyServer(drop_first=1)
    yield server
    server.close()


class TestIdempotentRetry:
    def test_query_retries_once_over_a_fresh_connection(self, flaky):
        client = ServiceClient(flaky.host, flaky.port)
        epoch, reachable = client.query("a", "b")
        client.close()
        assert (epoch, reachable) == (0, True)
        assert flaky.connections == 2            # dropped, then retried
        assert len(flaky.requests) == 2
        assert all(request["op"] == "query"
                   for request in flaky.requests)

    def test_later_reads_retry_their_own_drop(self, flaky):
        client = ServiceClient(flaky.host, flaky.port)
        assert client.ping() == 0                # drop 1 retried away
        flaky._drop_remaining = 1
        assert client.call({"op": "stats"})["ok"]
        client.close()
        assert flaky.connections == 3            # one reconnect each

    def test_second_drop_surfaces_a_service_error(self):
        server = FlakyServer(drop_first=10)      # always drops
        try:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError,
                               match="retry after reconnect failed"):
                client.query("a", "b")
            client.close()
            assert server.connections == 2       # exactly one retry
        finally:
            server.close()


class TestWritesAreNeverRetried:
    def test_dropped_add_edge_raises_without_reconnecting(self, flaky):
        client = ServiceClient(flaky.host, flaky.port)
        with pytest.raises(ServiceError):
            client.add_edge("a", "b")
        client.close()
        assert flaky.connections == 1            # no second attempt
        assert len(flaky.requests) == 1

    def test_dropped_reload_raises_without_reconnecting(self, flaky):
        client = ServiceClient(flaky.host, flaky.port)
        with pytest.raises(ServiceError):
            client.reload()
        client.close()
        assert flaky.connections == 1

    def test_dropped_remove_edge_raises_without_reconnecting(
            self, flaky):
        # replaying a removal after a blind reconnect could delete an
        # edge re-inserted in between; the whitelist must exclude it
        client = ServiceClient(flaky.host, flaky.port)
        with pytest.raises(ServiceError):
            client.remove_edge("a", "b")
        client.close()
        assert flaky.connections == 1
        assert len(flaky.requests) == 1
        assert flaky.requests[0]["op"] == "remove_edge"

    def test_dropped_remove_node_raises_without_reconnecting(
            self, flaky):
        client = ServiceClient(flaky.host, flaky.port)
        with pytest.raises(ServiceError):
            client.remove_node("a")
        client.close()
        assert flaky.connections == 1
        assert flaky.requests[0]["op"] == "remove_node"
