"""End-to-end tests for the NDJSON TCP service.

Each test stands the service up on an ephemeral port via
:func:`start_in_thread` (its own event loop on a daemon thread) and
talks to it with the blocking :class:`ServiceClient` — the same code
path ``repro-graph query --remote`` uses.
"""

import json
import socket

import pytest

from repro import DiGraph
from repro.service import (
    IndexManager,
    RemoteError,
    ServiceClient,
    start_in_thread,
)

from tests.conftest import PAPER_FIG1_EDGES


@pytest.fixture
def running_service():
    manager = IndexManager.from_graph(DiGraph.from_edges(PAPER_FIG1_EDGES))
    with start_in_thread(manager, port=0) as handle:
        yield handle


@pytest.fixture
def client(running_service):
    host, port = running_service.address
    with ServiceClient(host, port) as client:
        yield client


def raw_exchange(address: tuple, payload: bytes) -> dict:
    """One raw line on a fresh socket, for malformed-input tests."""
    with socket.create_connection(address, timeout=10.0) as sock:
        sock.sendall(payload)
        with sock.makefile("rb") as reader:
            return json.loads(reader.readline())


class TestVerbs:
    def test_ping(self, client):
        assert client.ping() == 0

    def test_query(self, client):
        assert client.query("a", "e") == (0, True)
        assert client.query("e", "a") == (0, False)

    def test_query_batch_preserves_order(self, client):
        pairs = [("a", "e"), ("e", "a"), ("f", "i"), ("d", "d")]
        epoch, answers = client.query_batch(pairs)
        assert epoch == 0
        assert answers == [True, False, True, True]

    def test_write_then_reload_round_trip(self, client):
        ack = client.add_edge("e", "zz")
        assert ack["added"] is True
        assert ack["pending_writes"] == 1
        assert ack["epoch"] == 0             # invisible until the swap
        with pytest.raises(RemoteError) as excinfo:
            client.query("a", "zz")
        assert excinfo.value.code == "unknown_node"
        assert client.reload() == 1
        assert client.query("a", "zz") == (1, True)

    def test_add_node(self, client):
        assert client.add_node("island")["added"] is True
        assert client.add_node("island")["added"] is False

    def test_reload_without_writes_keeps_the_epoch(self, client):
        assert client.reload() == 0
        assert client.reload(force=True) == 1

    def test_stats_shape(self, client):
        client.query("a", "e")
        stats = client.stats()
        assert stats["server"]["requests"] >= 1
        assert stats["index"]["epoch"] == 0
        assert stats["batching"]["batches"] >= 1
        assert stats["cache"]["size"] >= 1

    def test_request_id_is_echoed(self, running_service, client):
        response = client.call({"op": "ping", "id": 42})
        assert response["id"] == 42


class TestErrors:
    def test_unknown_node_names_the_role(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.query("nope", "a")
        assert excinfo.value.code == "unknown_node"
        assert "source" in str(excinfo.value)

    def test_cycle_closing_edge(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.add_edge("e", "a")
        assert excinfo.value.code == "cycle"

    def test_unknown_endpoint_without_create(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.add_edge("a", "nope", create=False)
        assert excinfo.value.code == "unknown_node"

    def test_unknown_op(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.call({"op": "frobnicate"})
        assert excinfo.value.code == "bad_request"

    def test_missing_field(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.call({"op": "query", "source": "a"})
        assert excinfo.value.code == "bad_request"

    def test_malformed_pairs(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.call({"op": "query_batch", "pairs": [["a"]]})
        assert excinfo.value.code == "bad_request"

    def test_unhashable_node_values_are_bad_requests(self, client):
        """JSON containers are rejected at the request boundary; if one
        reached the batcher its TypeError would poison the flush task
        and hang every later query until the request timeout."""
        for request in ({"op": "query", "source": [1], "target": "a"},
                        {"op": "query", "source": "a", "target": {}},
                        {"op": "query_batch", "pairs": [[["a"], "e"]]},
                        {"op": "add_edge", "source": [1], "target": "a"},
                        {"op": "add_node", "node": {"a": 1}}):
            with pytest.raises(RemoteError) as excinfo:
                client.call(request)
            assert excinfo.value.code == "bad_request"
        # the flush loop survived: single queries still resolve
        assert client.query("a", "e") == (0, True)

    def test_oversized_line_gets_an_error_response(self, running_service):
        from repro.service.server import MAX_LINE_BYTES
        payload = (b'{"op":"ping","pad":"' + b"x" * MAX_LINE_BYTES
                   + b'"}\n')
        response = raw_exchange(running_service.address, payload)
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "exceeds" in response["message"]

    def test_invalid_json_line(self, running_service):
        response = raw_exchange(running_service.address,
                                b"this is not json\n")
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_non_object_request(self, running_service):
        response = raw_exchange(running_service.address, b"[1,2,3]\n")
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_writes_unsupported_on_cyclic_graph(self):
        cyclic = DiGraph.from_edges([("a", "b"), ("b", "a")])
        manager = IndexManager.from_graph(cyclic)
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                assert client.query("a", "b") == (0, True)
                with pytest.raises(RemoteError) as excinfo:
                    client.add_edge("b", "c")
                assert excinfo.value.code == "unsupported"

    def test_errors_are_counted_but_do_not_kill_the_connection(
            self, client):
        with pytest.raises(RemoteError):
            client.call({"op": "frobnicate"})
        # the same connection keeps working afterwards
        assert client.query("a", "e") == (0, True)
        assert client.stats()["server"]["errors"] >= 1


class TestLifecycle:
    def test_graceful_drain_refuses_late_clients(self):
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        handle = start_in_thread(manager, port=0)
        host, port = handle.address
        with ServiceClient(host, port) as client:
            assert client.query("a", "e") == (0, True)
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0)

    def test_two_services_bind_distinct_ephemeral_ports(self):
        managers = [IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES)) for _ in range(2)]
        with start_in_thread(managers[0], port=0) as one:
            with start_in_thread(managers[1], port=0) as two:
                assert one.address[1] != two.address[1]

    def test_from_address_parsing(self):
        with pytest.raises(ValueError):
            ServiceClient.from_address("no-port-here")
        with pytest.raises(ValueError):
            ServiceClient.from_address(":7431")


class TestOverload:
    def test_overloaded_wire_error_under_pressure(self):
        """A tiny queue + a long coalescing window forces at least one
        explicit ``overloaded`` response instead of silent buffering."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        with start_in_thread(manager, port=0, max_pending=2,
                             max_batch=2, max_wait_us=200_000) as handle:
            host, port = handle.address
            clients = [ServiceClient(host, port) for _ in range(8)]
            try:
                payload = json.dumps({"op": "query", "source": "a",
                                      "target": "e"}).encode() + b"\n"
                for client in clients:
                    client._sock.sendall(payload)
                outcomes = []
                for client in clients:
                    response = json.loads(client._reader.readline())
                    outcomes.append(response.get("error",
                                                 response.get("ok")))
            finally:
                for client in clients:
                    client.close()
        assert "overloaded" in outcomes         # explicit backpressure
        assert True in outcomes                 # but the queue itself served
        stats = handle.service.batcher.stats()
        assert stats["overloaded"] >= 1
