"""Tests for the ``/healthz`` / ``/readyz`` probes.

Both live on the ``--metrics-port`` HTTP side listener (single
process and worker pool alike) so an orchestrator needs exactly one
port for scraping and probing.  Liveness is unconditional; readiness
means a published snapshot (and, under a pool, every worker attached).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import DiGraph
from repro.service import IndexManager, start_in_thread

from tests.conftest import PAPER_FIG1_EDGES


def _get(host, port, route):
    """``(status, body_bytes)`` for one HTTP GET, 503 included."""
    try:
        with urllib.request.urlopen(
                f"http://{host}:{port}{route}", timeout=10.0) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def probed_service():
    manager = IndexManager.from_graph(
        DiGraph.from_edges(PAPER_FIG1_EDGES))
    with start_in_thread(manager, port=0, metrics_port=0) as handle:
        yield handle


class TestSingleProcessProbes:
    def test_healthz_is_unconditionally_ok(self, probed_service):
        host, port = probed_service.service.metrics_address
        status, body = _get(host, port, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_readyz_reports_ready_with_a_snapshot(self,
                                                  probed_service):
        host, port = probed_service.service.metrics_address
        status, body = _get(host, port, "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["epoch"] == 0
        assert payload["draining"] is False

    def test_readyz_goes_503_while_draining(self, probed_service):
        service = probed_service.service
        host, port = service.metrics_address
        service._draining = True
        try:
            status, body = _get(host, port, "/readyz")
        finally:
            service._draining = False
        assert status == 503
        assert json.loads(body)["ready"] is False

    def test_metrics_route_still_served(self, probed_service):
        host, port = probed_service.service.metrics_address
        status, body = _get(host, port, "/metrics")
        assert status == 200
        assert b"service_requests_total" in body

    def test_404_mentions_the_probe_routes(self, probed_service):
        host, port = probed_service.service.metrics_address
        status, body = _get(host, port, "/nope")
        assert status == 404
        assert b"/healthz" in body and b"/readyz" in body

    def test_ready_method_tracks_server_state(self):
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        with start_in_thread(manager) as handle:
            assert handle.service.ready() is True
        assert handle.service.ready() is False   # stopped


class TestPoolReadiness:
    def test_pool_ready_requires_start(self):
        from repro.service import WorkerPool
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        pool = WorkerPool(manager, workers=1)
        assert pool.ready() is False             # never started

    def test_pool_probes_over_http(self):
        from repro.service import WorkerPool
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        pool = WorkerPool(manager, workers=1, metrics_port=0)
        try:
            pool.start()
            host, port = pool.metrics_address
            status, body = _get(host, port, "/healthz")
            assert status == 200 and body == b"ok\n"
            status, body = _get(host, port, "/readyz")
            assert status == 200
            payload = json.loads(body)
            assert payload["ready"] is True
            assert payload["workers"] == payload["expected"] == 1
        finally:
            pool.stop()
        assert pool.ready() is False             # stopped
