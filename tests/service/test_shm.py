"""Shared-memory snapshot lifecycle: dump, attach, validate, unlink."""

import json
import os
import struct

import pytest

from repro.core.index import ChainIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphFormatError, IndexFormatError
from repro.graph.generators import semi_random_dag
from repro.service import attach_index, dump_index
from repro.service.shm import segment_name

from tests.conftest import PAPER_FIG1_EDGES, bfs_reachable


@pytest.fixture
def graph() -> DiGraph:
    return semi_random_dag(40, 20, seed=11)


@pytest.fixture
def index(graph) -> ChainIndex:
    return ChainIndex.build(graph)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestRoundTrip:
    def test_attached_index_matches_bfs_on_every_pair(self, graph,
                                                      index):
        shm = dump_index(index, epoch=3)
        try:
            attached = attach_index(shm.name)
            assert attached.epoch == 3
            nodes = graph.nodes()
            pairs = [(u, v) for u in nodes for v in nodes]
            answers = attached.index.is_reachable_many(pairs)
            for (u, v), answer in zip(pairs, answers):
                assert answer == bfs_reachable(graph, u, v)
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_paper_example_round_trips(self):
        index = ChainIndex.build(DiGraph.from_edges(PAPER_FIG1_EDGES))
        shm = dump_index(index)
        try:
            attached = attach_index(shm.name)
            assert attached.index.is_reachable("a", "e")
            assert not attached.index.is_reachable("e", "a")
            assert attached.index.num_chains == index.num_chains
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attached_labeling_is_borrowed_and_read_only(self, index):
        shm = dump_index(index)

        def check(labeling) -> None:
            # scoped so no view reference outlives the close() below
            for field in (labeling.chain_of, labeling.position_of,
                          labeling.seq_chains, labeling.seq_positions):
                assert isinstance(field, memoryview)
                assert field.readonly
            with pytest.raises(TypeError):
                labeling.chain_of[0] = 99

        try:
            attached = attach_index(shm.name)
            check(attached.index._labeling)
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_crc_is_the_persistence_checksum(self, index):
        from repro.core.labeling import packed_fields
        from repro.core.persistence import labeling_checksum
        shm = dump_index(index)
        try:
            attached = attach_index(shm.name)
            assert attached.labeling_crc32 == labeling_checksum(
                packed_fields(index._labeling))
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_dump_rejects_non_chain_backends(self):
        with pytest.raises(GraphFormatError):
            dump_index(object())


class TestCompressedSegments:
    def test_compressed_round_trip_matches_bfs(self, graph):
        compressed = ChainIndex.build(graph, codec="compressed")
        shm = dump_index(compressed, epoch=5)
        try:
            attached = attach_index(shm.name)
            assert attached.epoch == 5
            assert attached.index.codec == "compressed"
            nodes = graph.nodes()
            pairs = [(u, v) for u in nodes for v in nodes]
            answers = attached.index.is_reachable_many(pairs)
            for (u, v), answer in zip(pairs, answers):
                assert answer == bfs_reachable(graph, u, v)
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_compressed_attach_borrows_the_blob(self, graph):
        """Zero label-byte copies: the attached store's varint blob
        and scalar columns are read-only views over the segment."""
        compressed = ChainIndex.build(graph, codec="compressed")
        shm = dump_index(compressed)

        def check(store) -> None:
            for field in (store.chain_of, store.position_of,
                          store.rank_of, store.level_of,
                          store.seq_offsets, store.seq_blob):
                assert isinstance(field, memoryview)
                assert field.readonly

        try:
            attached = attach_index(shm.name)
            check(attached.index._labeling.store)
            attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_compressed_header_records_codec_and_crc(self, graph):
        compressed = ChainIndex.build(graph, codec="compressed")
        shm = dump_index(compressed)
        try:
            header_len = struct.unpack("<Q", bytes(shm.buf[8:16]))[0]
            header = json.loads(bytes(shm.buf[16:16 + header_len]))
            assert header["codec"] == "compressed"
            assert header["labeling_crc32"] == \
                compressed._labeling.store.checksum()
            assert header["entries"] == compressed.label_entries()
        finally:
            shm.close()
            shm.unlink()

    def test_corrupt_compressed_blob_is_rejected_by_crc(self, graph):
        compressed = ChainIndex.build(graph, codec="compressed")
        shm = dump_index(compressed)
        try:
            # locate the varint blob via the header layout and flip
            # one byte inside it
            header_len = struct.unpack("<Q", bytes(shm.buf[8:16]))[0]
            header = json.loads(bytes(shm.buf[16:16 + header_len]))
            data_start = (16 + header_len + 7) & ~7
            blob_start = data_start + header["fields"]["sequence_blob"][0]
            shm.buf[blob_start] = shm.buf[blob_start] ^ 0xFF
            with pytest.raises(IndexFormatError,
                               match="checksum mismatch"):
                attach_index(shm.name)
        finally:
            shm.close()
            shm.unlink()


class TestValidation:
    def test_corrupt_label_bytes_are_rejected_by_crc(self, index):
        shm = dump_index(index)
        try:
            # flip one byte inside the first packed array
            header_len = struct.unpack("<Q", bytes(shm.buf[8:16]))[0]
            data_start = (16 + header_len + 7) & ~7
            shm.buf[data_start] = shm.buf[data_start] ^ 0xFF
            with pytest.raises(IndexFormatError,
                               match="checksum mismatch"):
                attach_index(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_bad_magic_is_rejected(self, index):
        shm = dump_index(index)
        try:
            shm.buf[0:8] = b"notrepro"
            with pytest.raises(IndexFormatError, match="bad magic"):
                attach_index(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_unknown_layout_version_is_rejected(self, index):
        shm = dump_index(index)
        try:
            header_len = struct.unpack("<Q", bytes(shm.buf[8:16]))[0]
            header = json.loads(bytes(shm.buf[16:16 + header_len]))
            header["version"] = 9
            rewritten = json.dumps(
                header, separators=(",", ":")).encode("utf-8")
            assert len(rewritten) == header_len   # same digit count
            shm.buf[16:16 + header_len] = rewritten
            with pytest.raises(IndexFormatError,
                               match="layout version"):
                attach_index(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_missing_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_index(segment_name("repro-test-missing"))


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="needs a visible /dev/shm")
class TestLifecycle:
    def test_unlink_removes_the_name_after_attachers_close(self, index):
        shm = dump_index(index)
        name = shm.name
        assert _segment_exists(name)
        attached = attach_index(name)
        attached.close()
        shm.close()
        shm.unlink()
        assert not _segment_exists(name)
        with pytest.raises(FileNotFoundError):
            attach_index(name)

    def test_attacher_exit_does_not_unlink(self, index):
        """The resource tracker must not reap a segment just because an
        attacher detached — only the creator unlinks."""
        shm = dump_index(index)
        name = shm.name
        try:
            for _ in range(3):
                attach_index(name).close()
            assert _segment_exists(name)
            # still attachable after every reader detached
            attach_index(name).close()
        finally:
            shm.close()
            shm.unlink()
        assert not _segment_exists(name)

    def test_close_with_live_views_raises_buffer_error(self, index):
        shm = dump_index(index)
        attached = attach_index(shm.name)
        view = attached.index._labeling.chain_of     # strong reference
        with pytest.raises(BufferError):
            attached.close()
        del view
        attached.close()
        shm.close()
        shm.unlink()
