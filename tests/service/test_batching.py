"""Unit tests for the micro-batching engine.

The environment has no pytest-asyncio, so every async scenario runs
inside :func:`asyncio.run` from a plain synchronous test.
"""

import asyncio

import pytest

from repro import DiGraph, NodeNotFoundError
from repro.service import (
    IndexManager,
    MicroBatcher,
    OverloadedError,
    ResultCache,
    ServiceError,
)

from tests.conftest import PAPER_FIG1_EDGES, bfs_reachable


def make_manager() -> IndexManager:
    return IndexManager.from_graph(DiGraph.from_edges(PAPER_FIG1_EDGES))


class TestCoalescing:
    def test_concurrent_submits_share_kernel_calls(self):
        """Many concurrent clients produce far fewer kernel batches."""
        manager = make_manager()
        graph = manager.snapshot.graph
        nodes = graph.nodes()
        pairs = [(u, v) for u in nodes for v in nodes]

        async def scenario():
            batcher = MicroBatcher(manager, max_batch=128,
                                   max_wait_us=2000)
            await batcher.start()
            answers = await asyncio.gather(
                *(batcher.submit(u, v) for u, v in pairs))
            await batcher.close()
            return answers, batcher.stats()

        answers, stats = asyncio.run(scenario())
        for (u, v), (epoch, reachable) in zip(pairs, answers):
            assert epoch == 0
            assert reachable == bfs_reachable(graph, u, v)
        assert stats["coalesced_queries"] == len(pairs)
        # 81 queries coalesced into a handful of flushes, not 81
        assert stats["batches"] < len(pairs) / 2
        assert stats["largest_batch"] > 1

    def test_zero_wait_still_answers(self):
        manager = make_manager()

        async def scenario():
            batcher = MicroBatcher(manager, max_wait_us=0)
            await batcher.start()
            result = await batcher.submit("a", "e")
            await batcher.close()
            return result

        assert asyncio.run(scenario()) == (0, True)

    def test_submit_many_is_inline(self):
        manager = make_manager()
        batcher = MicroBatcher(manager)
        epoch, answers = batcher.submit_many([("a", "e"), ("e", "a")])
        assert (epoch, answers) == (0, [True, False])
        assert batcher.stats()["batches"] == 1

    def test_bad_pair_fails_only_its_own_query(self):
        """The per-pair fallback isolates an unknown-node failure."""
        manager = make_manager()

        async def scenario():
            batcher = MicroBatcher(manager, max_wait_us=2000)
            await batcher.start()
            results = await asyncio.gather(
                batcher.submit("a", "e"),
                batcher.submit("a", "no-such-node"),
                batcher.submit("f", "i"),
                return_exceptions=True)
            await batcher.close()
            return results

        good, bad, also_good = asyncio.run(scenario())
        assert good == (0, True)
        assert isinstance(bad, NodeNotFoundError)
        assert bad.role == "target"
        assert also_good == (0, True)

    def test_unhashable_pair_does_not_kill_the_flush_loop(self):
        """A pair straight off wire JSON can be unhashable (a list);
        the TypeError it raises must fail only its own future — if it
        escaped, the flush task would die and every later query would
        hang until its request timeout."""
        manager = make_manager()

        async def scenario():
            batcher = MicroBatcher(manager, ResultCache(capacity=64),
                                   max_wait_us=2000)
            await batcher.start()
            results = await asyncio.gather(
                batcher.submit("a", "e"),
                batcher.submit(["a"], "e"),      # unhashable source
                return_exceptions=True)
            late = await batcher.submit("f", "i")
            await batcher.close()
            return results, late

        (good, bad), late = asyncio.run(scenario())
        assert good == (0, True)
        assert isinstance(bad, TypeError)
        assert late == (0, True)                 # the loop survived


class TestBackpressure:
    def test_overloaded_at_max_pending(self):
        """With the flusher parked, the queue bound fails fast."""
        manager = make_manager()

        async def scenario():
            # never started: nothing drains the queue, so the bound is
            # hit deterministically
            batcher = MicroBatcher(manager, max_pending=4)
            waiters = [asyncio.ensure_future(batcher.submit("a", "e"))
                       for _ in range(4)]
            await asyncio.sleep(0)           # let them enqueue
            with pytest.raises(OverloadedError) as excinfo:
                await batcher.submit("a", "e")
            assert excinfo.value.pending == 4
            assert excinfo.value.limit == 4
            assert batcher.stats()["overloaded"] == 1
            assert batcher.queue_depth == 4
            await batcher.close(drain=True)  # resolve the waiters
            return await asyncio.gather(*waiters)

        answers = asyncio.run(scenario())
        assert answers == [(0, True)] * 4

    def test_submit_after_close_is_refused(self):
        manager = make_manager()

        async def scenario():
            batcher = MicroBatcher(manager)
            await batcher.start()
            await batcher.close()
            with pytest.raises(ServiceError):
                await batcher.submit("a", "e")
            with pytest.raises(ServiceError):
                batcher.submit_many([("a", "e")])

        asyncio.run(scenario())

    def test_close_without_drain_fails_pending(self):
        manager = make_manager()

        async def scenario():
            batcher = MicroBatcher(manager, max_pending=8)
            waiter = asyncio.ensure_future(batcher.submit("a", "e"))
            await asyncio.sleep(0)
            await batcher.close(drain=False)
            with pytest.raises(ServiceError):
                await waiter

        asyncio.run(scenario())

    def test_rejects_silly_limits(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            MicroBatcher(manager, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(manager, max_pending=0)


class TestCacheIntegration:
    def test_repeat_queries_hit_the_cache(self):
        manager = make_manager()
        cache = ResultCache(capacity=64)
        batcher = MicroBatcher(manager, cache)
        pairs = [("a", "e"), ("e", "a"), ("f", "i")]
        first = batcher.submit_many(pairs)
        second = batcher.submit_many(pairs)
        assert first == second
        stats = cache.stats()
        assert stats["hits"] == len(pairs)
        assert stats["misses"] == len(pairs)

    def test_swap_invalidates_by_epoch(self):
        manager = make_manager()
        cache = ResultCache(capacity=64)
        batcher = MicroBatcher(manager, cache)
        assert batcher.submit_many([("a", "e")]) == (0, [True])
        manager.add_edge("e", "zz", create=True)
        manager.swap()
        epoch, answers = batcher.submit_many([("a", "zz"), ("a", "e")])
        assert (epoch, answers) == (1, [True, True])
        # the epoch-0 entry is still cached but unreachable by key
        assert cache.get(0, "a", "e") is True
        assert cache.get(1, "a", "zz") is True

    def test_mixed_epoch_batches_never_escape(self):
        """A swap racing the cache pass re-resolves the whole batch."""
        manager = make_manager()
        cache = ResultCache(capacity=64)
        batcher = MicroBatcher(manager, cache)
        batcher.submit_many([("a", "e")])        # warm the cache at 0

        real_query_many = manager.query_many
        swapped = {"done": False}

        def racing_query_many(pairs):
            # a writer promotes a new snapshot between the cache pass
            # (which already answered ("a","e") at epoch 0) and the
            # kernel call for the misses
            if not swapped["done"]:
                swapped["done"] = True
                manager.add_edge("e", "zz", create=True)
                manager.swap()
            return real_query_many(pairs)

        manager.query_many = racing_query_many
        try:
            epoch, answers = batcher.submit_many([("a", "e"), ("f", "i")])
        finally:
            manager.query_many = real_query_many
        assert epoch == 1                        # the whole batch moved
        assert answers == [True, True]
