"""Serving-path telemetry: traces, class histograms, exposition, logs.

Covers the v2 telemetry acceptance criteria end to end: a ``"trace":
true`` query echoes a stage breakdown whose per-stage durations sum to
no more than the total; the Prometheus side listener serves text the
standard library alone can scrape and parse; answer classes land in
the right always-on histograms; slow queries and lifecycle events hit
the structured log.
"""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro import DiGraph
from repro.service import (
    IndexManager,
    ServiceClient,
    SlowTraceRing,
    Trace,
    start_in_thread,
)

from tests.conftest import PAPER_FIG1_EDGES

CLASSES = {"positive", "negative", "prefilter_hit", "cache_hit",
           "batch"}


@pytest.fixture
def telemetry_service():
    manager = IndexManager.from_graph(
        DiGraph.from_edges(PAPER_FIG1_EDGES))
    log = io.StringIO()
    with start_in_thread(manager, port=0, metrics_port=0, log=log,
                         slow_query_ms=0.0) as handle:
        handle.log_stream = log
        yield handle


@pytest.fixture
def client(telemetry_service):
    host, port = telemetry_service.address
    with ServiceClient(host, port) as client:
        yield client


def log_records(handle) -> list:
    return [json.loads(line)
            for line in handle.log_stream.getvalue().splitlines()]


class TestTracing:
    def test_traced_query_echoes_a_stage_breakdown(self, client):
        epoch, reachable, trace = client.query_traced("a", "e")
        assert (epoch, reachable) == (0, True)
        assert trace["trace_id"].startswith("q-")
        assert trace["op"] == "query"
        assert trace["epoch"] == 0
        stages = [entry["stage"] for entry in trace["stages"]]
        assert stages[0] == "accept"
        assert stages[-1] == "respond"
        assert "enqueue" in stages and "flush" in stages
        assert "kernel" in stages or "cache" in stages
        # per-stage durations never overshoot the request total
        assert all(entry["ms"] >= 0.0 for entry in trace["stages"])
        stage_sum = sum(entry["ms"] for entry in trace["stages"])
        assert stage_sum <= trace["total_ms"]

    def test_accept_mark_carries_queue_depth_and_epoch(self, client):
        _, _, trace = client.query_traced("a", "e")
        accept = trace["stages"][0]
        assert accept["queue_depth"] >= 0
        assert accept["epoch"] == 0

    def test_untraced_responses_stay_lean(self, client):
        response = client.call(
            {"op": "query", "source": "a", "target": "e"})
        assert "trace" not in response

    def test_batch_queries_trace_too(self, client):
        response = client.call({"op": "query_batch",
                                "pairs": [["a", "e"], ["e", "a"]],
                                "trace": True})
        trace = response["trace"]
        assert trace["op"] == "query_batch"
        assert trace["class"] == "batch"

    def test_trace_unit_stage_deltas(self):
        trace = Trace("query")
        trace.mark("accept")
        trace.mark("respond")
        trace.finish()
        breakdown = trace.to_dict()
        assert [entry["stage"] for entry in breakdown["stages"]] \
            == ["accept", "respond"]
        assert sum(entry["ms"] for entry in breakdown["stages"]) \
            <= breakdown["total_ms"]

    def test_slow_trace_ring_keeps_the_slowest(self):
        ring = SlowTraceRing(capacity=2)
        for seconds in (0.010, 0.030, 0.020, 0.001):
            trace = Trace("query")
            trace.total_seconds = seconds
            ring.offer(trace)
        totals = [entry["total_ms"] for entry in ring.snapshot()]
        assert totals == [30.0, 20.0]


class TestClassification:
    def test_positive_negative_cache_and_batch_classes(self, client):
        client.query("a", "e")               # positive
        client.query("a", "e")               # second hit: cache_hit
        client.query("e", "a")               # some negative flavour
        client.query_batch([("a", "e"), ("f", "i")])
        stats = client.stats()
        latency = stats["latency"]
        assert set(latency) <= CLASSES
        assert latency["positive"]["count"] >= 1
        assert latency["cache_hit"]["count"] >= 1
        assert latency["batch"]["count"] == 1
        assert (latency.get("negative", {"count": 0})["count"]
                + latency.get("prefilter_hit", {"count": 0})["count"]
                >= 1)

    def test_prefilter_hit_class(self, telemetry_service, client):
        backend = telemetry_service.service.manager.snapshot.backend
        nodes = [source for source, _ in PAPER_FIG1_EDGES]
        pair = next(
            ((source, target) for source in nodes for target in nodes
             if backend.prefilter_rejects(source, target)), None)
        assert pair is not None, "no prefilter-rejected pair in Fig. 1"
        _, reachable, trace = client.query_traced(*pair)
        assert reachable is False
        assert trace["class"] == "prefilter_hit"

    def test_cache_hit_class_rides_the_trace(self, client):
        client.query("a", "e")
        _, _, trace = client.query_traced("a", "e")
        assert trace["class"] == "cache_hit"
        assert any(entry["stage"] == "cache"
                   for entry in trace["stages"])


class TestStats:
    def test_histogram_percentiles_and_slow_traces(self, client):
        for _ in range(4):
            client.query("a", "e")
        stats = client.stats()
        server = stats["server"]
        assert server["p50_ms"] <= server["p99_ms"] \
            <= server["p999_ms"]
        assert stats["batching"]["queue_wait"]["count"] >= 1
        assert stats["batching"]["kernel_batch"]["count"] >= 1
        slow = stats["slow_traces"]
        assert slow and all(entry["trace_id"].startswith("q-")
                            for entry in slow)
        totals = [entry["total_ms"] for entry in slow]
        assert totals == sorted(totals, reverse=True)


class TestExposition:
    def test_metrics_verb_returns_the_document(self, client):
        client.query("a", "e")
        text = client.metrics()
        assert "# TYPE repro_service_request_latency_seconds " \
               "histogram" in text
        assert "repro_service_requests_total" in text
        assert "repro_service_epoch 0" in text

    def test_http_scrape_parses_with_the_stdlib(self, telemetry_service,
                                                client):
        """Acceptance criterion: curl-able endpoint whose histogram a
        stdlib-only client can scrape and parse."""
        client.query("a", "e")
        client.query("e", "a")
        host, port = telemetry_service.service.metrics_address
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10.0) as reply:
            assert reply.status == 200
            assert reply.headers["Content-Type"].startswith(
                "text/plain")
            text = reply.read().decode("utf-8")
        samples = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        base = "repro_service_request_latency_seconds"
        buckets = {name: value for name, value in samples.items()
                   if name.startswith(base + "_bucket")}
        assert buckets, "no _bucket series in the scrape"
        inf = buckets[base + '_bucket{le="+Inf"}']
        assert inf == samples[base + "_count"] >= 2
        assert all(value <= inf for value in buckets.values())
        assert samples[base + "_sum"] > 0.0
        # the always-on service counters ride along
        assert samples["repro_service_requests_total"] >= 2

    def test_http_unknown_path_is_404(self, telemetry_service, client):
        host, port = telemetry_service.service.metrics_address
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{host}:{port}/nope",
                                   timeout=10.0)
        assert excinfo.value.code == 404


class TestStructuredLogs:
    def test_lifecycle_and_slow_query_events(self, telemetry_service,
                                             client):
        client.query("a", "e")
        client.reload(force=True)
        records = log_records(telemetry_service)
        kinds = [record["event"] for record in records]
        assert kinds[0] == "listening"
        assert "swap_start" in kinds and "swap_finish" in kinds
        # slow_query_ms=0.0 makes every query slow by definition
        slow = next(record for record in records
                    if record["event"] == "slow_query")
        assert slow["trace_id"].startswith("q-")
        assert slow["total_ms"] >= 0.0
        assert slow["stages"][0]["stage"] == "accept"
        swap_finish = next(record for record in records
                           if record["event"] == "swap_finish")
        assert swap_finish["epoch"] == 1

    def test_drain_events_on_shutdown(self):
        manager = IndexManager.from_graph(
            DiGraph.from_edges(PAPER_FIG1_EDGES))
        log = io.StringIO()
        with start_in_thread(manager, port=0, log=log) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                client.ping()
        kinds = [json.loads(line)["event"]
                 for line in log.getvalue().splitlines()]
        assert "drain_start" in kinds
        assert kinds[-1] == "drain_finish"
