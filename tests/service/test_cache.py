"""Unit tests for the epoch-keyed LRU result cache."""

import pytest

from repro.service import ResultCache


class TestLookup:
    def test_round_trip(self):
        cache = ResultCache(capacity=8)
        cache.put(0, "a", "b", True)
        cache.put(0, "b", "a", False)
        assert cache.get(0, "a", "b") is True
        assert cache.get(0, "b", "a") is False

    def test_miss_returns_none(self):
        cache = ResultCache(capacity=8)
        assert cache.get(0, "a", "b") is None

    def test_epoch_is_part_of_the_key(self):
        """A swap invalidates by construction: new epoch, new keys."""
        cache = ResultCache(capacity=8)
        cache.put(0, "a", "b", True)
        assert cache.get(1, "a", "b") is None
        cache.put(1, "a", "b", False)
        assert cache.get(0, "a", "b") is True
        assert cache.get(1, "a", "b") is False

    def test_false_answers_are_cached(self):
        cache = ResultCache(capacity=8)
        cache.put(3, 1, 2, False)
        assert cache.get(3, 1, 2) is False


class TestEviction:
    def test_capacity_bound(self):
        cache = ResultCache(capacity=3)
        for n in range(10):
            cache.put(0, n, n, True)
        assert len(cache) == 3

    def test_least_recently_used_goes_first(self):
        cache = ResultCache(capacity=2)
        cache.put(0, "a", "b", True)
        cache.put(0, "c", "d", True)
        assert cache.get(0, "a", "b") is True    # refresh "a"
        cache.put(0, "e", "f", True)             # evicts "c"
        assert cache.get(0, "a", "b") is True
        assert cache.get(0, "c", "d") is None

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(capacity=2)
        cache.put(0, "a", "b", True)
        cache.put(0, "c", "d", True)
        cache.put(0, "a", "b", True)             # refresh, not grow
        cache.put(0, "e", "f", True)             # evicts "c"
        assert cache.get(0, "a", "b") is True
        assert cache.get(0, "c", "d") is None

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.put(0, "a", "b", True)
        cache.get(0, "a", "b")
        cache.get(0, "x", "y")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1
