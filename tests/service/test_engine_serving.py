"""Serving registry engines over the NDJSON TCP service.

The acceptance surface of the engine seam: ``serve --engine <name>``
must work for a chain engine, a baseline engine, and the composite —
this file drives the same path in-process
(``IndexManager.from_graph(engine=...)`` + :func:`start_in_thread`).
"""

import pytest

from repro import DiGraph
from repro.service import IndexManager, ServiceClient, start_in_thread

MULTI_COMPONENT_EDGES = [("a", "b"), ("b", "c"), ("c", "a"),
                         ("p", "q"), ("q", "r"),
                         ("x", "y")]

DAG_EDGES = [("a", "b"), ("b", "c"), ("x", "y")]


def graph() -> DiGraph:
    return DiGraph.from_edges(MULTI_COMPONENT_EDGES)


@pytest.mark.parametrize("engine", ["chain-stratified", "chain-closure",
                                    "bfs", "two-hop", "warren",
                                    "composite"])
class TestServeAnyEngine:
    def test_queries_match_the_default_engine(self, engine):
        expected_manager = IndexManager.from_graph(graph())
        manager = IndexManager.from_graph(graph(), engine=engine)
        pairs = [("a", "c"), ("c", "b"), ("p", "r"), ("r", "p"),
                 ("a", "y"), ("x", "y")]
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                epoch, answers = client.query_batch(pairs)
        assert epoch == 0
        assert answers == expected_manager.query_many(pairs)[1]

    def test_stats_report_the_engine_and_capabilities(self, engine):
        manager = IndexManager.from_graph(graph(), engine=engine)
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                stats = client.stats()
        assert stats["index"]["engine"] == engine
        assert set(stats["index"]["capabilities"]) == {
            "supports_batch", "writable", "persistable", "enumerable"}


class TestWritesThroughTheEngineSeam:
    def test_writes_then_swap_repack_the_selected_engine(self):
        """A baseline engine serves reads while the shadow absorbs
        writes; the swap rebuilds *that* engine over the new graph."""
        manager = IndexManager.from_graph(DiGraph.from_edges(DAG_EDGES),
                                          engine="warren")
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                assert client.query("a", "y") == (0, False)
                client.add_edge("c", "x")
                assert client.reload() == 1
                assert client.query("a", "y") == (1, True)
        backend = manager.snapshot.backend
        assert type(backend).__name__ == "CondensingEngine"

    def test_composite_service_rejects_writes_on_cyclic_input(self):
        """Cyclic input means no shadow, whatever the engine."""
        from repro.service.errors import ServiceError
        manager = IndexManager.from_graph(graph(), engine="composite")
        assert not manager.writable
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError):
                    client.add_edge("c", "x")


class TestServePersistedComposite:
    def test_from_index_file_serves_a_v3_manifest(self, tmp_path):
        from repro.core.persistence import save_index
        from repro.engine.composite import CompositeEngine
        path = tmp_path / "composite.idx"
        save_index(CompositeEngine.build(graph()), path)
        manager = IndexManager.from_index_file(path)
        assert manager.stats()["engine"] == "composite"
        assert not manager.writable
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                epoch, answers = client.query_batch(
                    [("a", "c"), ("a", "y"), ("p", "r")])
        assert answers == [True, False, True]
