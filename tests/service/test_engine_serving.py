"""Serving registry engines over the NDJSON TCP service.

The acceptance surface of the engine seam: ``serve --engine <name>``
must work for a chain engine, a baseline engine, and the composite —
this file drives the same path in-process
(``IndexManager.from_graph(engine=...)`` + :func:`start_in_thread`).
"""

import pytest

from repro import DiGraph
from repro.service import IndexManager, ServiceClient, start_in_thread

MULTI_COMPONENT_EDGES = [("a", "b"), ("b", "c"), ("c", "a"),
                         ("p", "q"), ("q", "r"),
                         ("x", "y")]

DAG_EDGES = [("a", "b"), ("b", "c"), ("x", "y")]


def graph() -> DiGraph:
    return DiGraph.from_edges(MULTI_COMPONENT_EDGES)


@pytest.mark.parametrize("engine", ["chain-stratified", "chain-closure",
                                    "bfs", "two-hop", "warren",
                                    "composite"])
class TestServeAnyEngine:
    def test_queries_match_the_default_engine(self, engine):
        expected_manager = IndexManager.from_graph(graph())
        manager = IndexManager.from_graph(graph(), engine=engine)
        pairs = [("a", "c"), ("c", "b"), ("p", "r"), ("r", "p"),
                 ("a", "y"), ("x", "y")]
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                epoch, answers = client.query_batch(pairs)
        assert epoch == 0
        assert answers == expected_manager.query_many(pairs)[1]

    def test_stats_report_the_engine_and_capabilities(self, engine):
        manager = IndexManager.from_graph(graph(), engine=engine)
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                stats = client.stats()
        assert stats["index"]["engine"] == engine
        assert set(stats["index"]["capabilities"]) == {
            "supports_batch", "writable", "persistable", "enumerable",
            "deletable"}


class TestWritesThroughTheEngineSeam:
    def test_writes_then_swap_repack_the_selected_engine(self):
        """A baseline engine serves reads while the shadow absorbs
        writes; the swap rebuilds *that* engine over the new graph."""
        manager = IndexManager.from_graph(DiGraph.from_edges(DAG_EDGES),
                                          engine="warren")
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                assert client.query("a", "y") == (0, False)
                client.add_edge("c", "x")
                assert client.reload() == 1
                assert client.query("a", "y") == (1, True)
        backend = manager.snapshot.backend
        assert type(backend).__name__ == "CondensingEngine"

    def test_composite_service_rejects_writes_on_cyclic_input(self):
        """Cyclic input means no shadow, whatever the engine."""
        from repro.service.errors import ServiceError
        manager = IndexManager.from_graph(graph(), engine="composite")
        assert not manager.writable
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError):
                    client.add_edge("c", "x")


class TestRemovalsThroughTheEngineSeam:
    def test_dynamic_tol_serves_fresh_answers_after_removals(self):
        """The deletable engine repairs in place: every answer after a
        ``remove_edge`` / ``remove_node`` reflects it immediately,
        with no reload in between."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(DAG_EDGES), engine="dynamic-tol")
        assert manager.stats()["capabilities"]["deletable"]
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                assert client.query("a", "c")[1] is True
                ack = client.remove_edge("b", "c")
                assert ack["removed"] is True
                assert client.query("a", "c")[1] is False
                # removing again: not present, mirrors add_edge dup
                assert client.remove_edge("b", "c")["removed"] is False
                ack = client.remove_node("b")
                assert ack["removed"] is True
                from repro.service import RemoteError
                with pytest.raises(RemoteError) as info:
                    client.query("a", "b")       # b is gone
                assert info.value.code == "unknown_node"
                assert client.query("x", "y")[1] is True

    def test_non_deletable_shadow_removes_via_rebuild(self):
        """Any writable manager accepts the verbs; a shadow without
        in-place repair mutates its graph and re-derives labels."""
        manager = IndexManager.from_graph(
            DiGraph.from_edges(DAG_EDGES), engine="chain-stratified")
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                client.remove_edge("a", "b")
                assert client.reload() == 1
                assert client.query("a", "c")[1] is False
                # now (b, a) must be insertable: stale reach maps
                # would falsely call it a cycle
                client.add_edge("b", "a")
                assert client.reload() == 2
                assert client.query("b", "c")[1] is True

    def test_remove_errors_carry_wire_codes_and_roles(self):
        from repro.service import RemoteError
        manager = IndexManager.from_graph(
            DiGraph.from_edges(DAG_EDGES), engine="dynamic-tol")
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                with pytest.raises(RemoteError) as info:
                    client.remove_edge("nope", "b")
                assert info.value.code == "unknown_node"
                assert "source" in str(info.value)
                with pytest.raises(RemoteError) as info:
                    client.remove_edge("a", "nope")
                assert "target" in str(info.value)
                with pytest.raises(RemoteError) as info:
                    client.remove_node("nope")
                assert info.value.code == "unknown_node"

    def test_read_only_manager_rejects_removals(self):
        from repro.service import RemoteError
        manager = IndexManager.from_graph(graph())   # cyclic: no shadow
        assert not manager.writable
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                with pytest.raises(RemoteError) as info:
                    client.remove_edge("a", "b")
                assert info.value.code == "unsupported"
                with pytest.raises(RemoteError) as info:
                    client.remove_node("a")
                assert info.value.code == "unsupported"


class TestServePersistedComposite:
    def test_from_index_file_serves_a_v3_manifest(self, tmp_path):
        from repro.core.persistence import save_index
        from repro.engine.composite import CompositeEngine
        path = tmp_path / "composite.idx"
        save_index(CompositeEngine.build(graph()), path)
        manager = IndexManager.from_index_file(path)
        assert manager.stats()["engine"] == "composite"
        assert not manager.writable
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                epoch, answers = client.query_batch(
                    [("a", "c"), ("a", "y"), ("p", "r")])
        assert answers == [True, False, True]
