"""WorkerPool end to end: real processes, real sockets, real segments.

Each test stands up an actual pool (spawned worker processes attached
to a shared-memory snapshot) and drives it over TCP, so these are the
slowest tests in the suite — the graph is kept small and worker counts
at two.
"""

import os
import signal
import threading
import time

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import semi_random_dag
from repro.service import (
    IndexManager,
    ServiceClient,
    ServiceError,
    WorkerPool,
)

from tests.conftest import bfs_reachable


@pytest.fixture
def graph() -> DiGraph:
    return semi_random_dag(40, 20, seed=13)


@pytest.fixture
def pool(graph):
    pool = WorkerPool(IndexManager.from_graph(graph), workers=2,
                      port=0)
    pool.start(timeout=60)
    yield pool
    pool.stop()


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestServing:
    def test_pool_answers_match_bfs(self, graph, pool):
        host, port = pool.address
        nodes = graph.nodes()[:20]
        pairs = [(u, v) for u in nodes for v in nodes]
        with ServiceClient(host, port) as client:
            epoch, answers = client.query_batch(pairs)
        assert epoch == 0
        for (u, v), answer in zip(pairs, answers):
            assert answer == bfs_reachable(graph, u, v)

    def test_ready_semantics_and_describe(self, pool):
        info = pool.describe()
        assert info["workers"] == 2
        assert len(info["pids"]) == 2
        assert os.getpid() not in info["pids"]
        assert info["epoch"] == 0
        host, port = pool.address
        assert (info["host"], info["port"]) == (host, port)

    def test_aggregated_stats_and_metrics(self, pool):
        host, port = pool.address
        with ServiceClient(host, port) as client:
            client.ping()
            stats = client.stats()
            metrics = client.metrics()
        section = stats["pool"]
        assert section["workers"] == 2
        assert section["configured_workers"] == 2
        assert section["epoch"] == 0
        assert len(stats["workers"]) == 2
        assert "repro_service_workers 2" in metrics
        assert "repro_service_reattach_total 0" in metrics

    def test_non_chain_engine_is_rejected(self, graph):
        manager = IndexManager.from_graph(graph, engine="two-hop")
        with pytest.raises(ServiceError, match="--workers 0"):
            WorkerPool(manager, workers=2, port=0)


class TestRemovalsThroughThePool:
    def test_remove_edge_rides_the_write_proxy(self, graph, pool):
        """The delete verbs proxy to the parent's shadow over the
        control pipe; a reload publishes the shrunken graph to every
        worker."""
        host, port = pool.address
        tail, head = next(iter(graph.edges()))
        with ServiceClient(host, port, timeout=30.0) as client:
            ack = client.remove_edge(tail, head)
            assert ack["removed"] is True
            assert ack["pending_writes"] >= 1
            # removing it again is a no-op, not an error
            assert client.remove_edge(tail, head)["removed"] is False
            new_epoch = client.reload()
        assert new_epoch == 1
        assert pool.wait_epoch(1, timeout=30)
        shrunk = pool.manager.snapshot.graph
        with ServiceClient(host, port, timeout=30.0) as client:
            nodes = graph.nodes()[:12]
            pairs = [(u, v) for u in nodes for v in nodes]
            epoch, answers = client.query_batch(pairs)
        assert epoch == 1
        for (u, v), answer in zip(pairs, answers):
            assert answer == bfs_reachable(shrunk, u, v)

    def test_remove_node_errors_cross_the_rpc_boundary(self, pool):
        from repro.service import RemoteError
        host, port = pool.address
        with ServiceClient(host, port, timeout=30.0) as client:
            with pytest.raises(RemoteError) as info:
                client.remove_node("never-existed")
            assert info.value.code == "unknown_node"
            with pytest.raises(RemoteError) as info:
                client.remove_edge("never-existed", "also-not")
            assert info.value.code == "unknown_node"
            assert "source" in str(info.value)


class TestZeroDowntimeSwap:
    def test_live_queries_never_fail_across_a_swap(self, graph, pool):
        host, port = pool.address
        old_segment = pool.aggregate_stats()["pool"]["segment"]
        nodes = graph.nodes()
        pairs = [(u, v) for u in nodes[:10] for v in nodes[:10]]
        failures: list[Exception] = []
        answered = [0]
        stop = threading.Event()

        def hammer() -> None:
            with ServiceClient(host, port, timeout=30.0) as client:
                while not stop.is_set():
                    try:
                        client.query_batch(pairs)
                        answered[0] += 1
                    except Exception as exc:     # noqa: BLE001
                        failures.append(exc)
                        return

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            with ServiceClient(host, port, timeout=30.0) as writer:
                writer.add_edge(nodes[0], "swap-born", create=True)
                new_epoch = writer.reload()
            assert new_epoch == 1
            assert pool.wait_epoch(1, timeout=30)
            # keep the load running a little past the re-attach
            time.sleep(0.2)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, f"queries failed during swap: {failures}"
        assert answered[0] > 0

        # every worker now answers from the new snapshot
        with ServiceClient(host, port) as client:
            epoch, answers = client.query_batch(
                [(nodes[0], "swap-born")] * 4)
        assert epoch == 1
        assert answers == [True] * 4

        # the retired epoch-0 segment was unlinked after both acks
        deadline = time.monotonic() + 10
        while _segment_exists(old_segment):
            assert time.monotonic() < deadline, (
                f"retired segment {old_segment} never unlinked")
            time.sleep(0.05)
        new_segment = pool.aggregate_stats()["pool"]["segment"]
        assert new_segment != old_segment
        assert _segment_exists(new_segment)

    def test_reattach_counts_surface_in_stats(self, pool):
        host, port = pool.address
        with ServiceClient(host, port, timeout=30.0) as client:
            client.add_edge("n0", "reattach-born", create=True)
            client.reload()
        assert pool.wait_epoch(1, timeout=30)
        deadline = time.monotonic() + 10
        while True:
            stats = pool.aggregate_stats()
            if stats["pool"]["reattaches"] >= 2:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert stats["pool"]["epoch"] == 1


class TestFailure:
    def test_sigkill_one_worker_respawns_and_keeps_serving(self, pool):
        host, port = pool.address
        before = set(pool.worker_pids())
        victim = sorted(before)[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while True:
            pids = set(pool.worker_pids())
            if victim not in pids and len(pids) == 2:
                break
            assert time.monotonic() < deadline, "worker never respawned"
            time.sleep(0.05)
        with ServiceClient(host, port, timeout=30.0) as client:
            assert client.ping() == 0
        stats = pool.aggregate_stats()
        assert stats["pool"]["respawns"] >= 1
        assert stats["pool"]["workers"] == 2


class TestDrain:
    def test_stop_reclaims_segments_and_processes(self, graph):
        pool = WorkerPool(IndexManager.from_graph(graph), workers=2,
                          port=0)
        pool.start(timeout=60)
        host, port = pool.address
        with ServiceClient(host, port, timeout=30.0) as client:
            client.add_edge(graph.nodes()[0], "drain-born", create=True)
            client.reload()
        assert pool.wait_epoch(1, timeout=30)
        segment = pool.aggregate_stats()["pool"]["segment"]
        pids = pool.worker_pids()
        pool.stop()
        assert not _segment_exists(segment)
        deadline = time.monotonic() + 10
        for pid in pids:
            while True:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                assert time.monotonic() < deadline, (
                    f"worker {pid} survived stop()")
                time.sleep(0.05)

    def test_stop_is_idempotent(self, graph):
        pool = WorkerPool(IndexManager.from_graph(graph), workers=2,
                          port=0)
        pool.start(timeout=60)
        pool.stop()
        pool.stop()
