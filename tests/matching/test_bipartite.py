"""Unit tests for the bipartite graph and matching models."""

import pytest

from repro.matching.bipartite import BipartiteGraph, Matching


class TestBipartiteGraph:
    def test_from_edges(self):
        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (0, 2), (1, 1)])
        assert g.num_edges == 3
        assert g.adj[0] == [0, 2]

    def test_bounds_checked(self):
        g = BipartiteGraph(2, 2)
        with pytest.raises(ValueError):
            g.add_edge(2, 0)
        with pytest.raises(ValueError):
            g.add_edge(0, 5)
        with pytest.raises(ValueError):
            BipartiteGraph(-1, 0)

    def test_add_bottom_grows_side(self):
        g = BipartiteGraph(1, 1)
        new = g.add_bottom()
        assert new == 1
        g.add_edge(0, 1)
        assert g.num_bottoms == 2


class TestMatching:
    def test_match_and_size(self):
        m = Matching(2, 2)
        m.match(0, 1)
        assert m.size() == 1
        assert m.is_matched_top(0)
        assert m.is_matched_bottom(1)
        assert m.free_tops() == [1]
        assert m.free_bottoms() == [0]

    def test_rematch_unpairs_old_partners(self):
        m = Matching(2, 2)
        m.match(0, 0)
        m.match(1, 0)       # steals bottom 0
        assert m.top_of[0] == 1
        assert m.bottom_of[0] == Matching.UNMATCHED
        m.match(1, 1)       # moves top 1 to bottom 1
        assert m.top_of[0] == Matching.UNMATCHED

    def test_unmatch_top(self):
        m = Matching(1, 1)
        m.match(0, 0)
        m.unmatch_top(0)
        assert m.size() == 0
        m.unmatch_top(0)  # idempotent
        assert m.size() == 0

    def test_pairs(self):
        m = Matching(3, 3)
        m.match(0, 2)
        m.match(2, 0)
        assert sorted(m.pairs()) == [(0, 2), (2, 0)]

    def test_check_accepts_valid_matching(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 1)])
        m = Matching(2, 2)
        m.match(0, 0)
        m.check(g)

    def test_check_rejects_non_edge(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        m = Matching(2, 2)
        m.match(1, 1)
        with pytest.raises(ValueError):
            m.check(g)

    def test_check_rejects_desync(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        m = Matching(2, 2)
        m.bottom_of[0] = 0  # half a pair, mirror missing
        with pytest.raises(ValueError):
            m.check(g)
