"""Unit and property tests for the maximum-matching algorithms."""

import random

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp, kuhn_matching


@st.composite
def bipartite_graphs(draw, max_side=10):
    num_tops = draw(st.integers(min_value=0, max_value=max_side))
    num_bottoms = draw(st.integers(min_value=0, max_value=max_side))
    graph = BipartiteGraph(num_tops, num_bottoms)
    if num_tops and num_bottoms:
        pairs = [(t, b) for t in range(num_tops)
                 for b in range(num_bottoms)]
        for t, b in sorted(draw(st.sets(st.sampled_from(pairs)))):
            graph.add_edge(t, b)
    return graph


def networkx_max_matching_size(graph: BipartiteGraph) -> int:
    nxg = nx.Graph()
    tops = [("t", i) for i in range(graph.num_tops)]
    bottoms = [("b", i) for i in range(graph.num_bottoms)]
    nxg.add_nodes_from(tops, bipartite=0)
    nxg.add_nodes_from(bottoms, bipartite=1)
    for top, adjacent in enumerate(graph.adj):
        for bottom in adjacent:
            nxg.add_edge(("t", top), ("b", bottom))
    matching = nx.bipartite.maximum_matching(nxg, top_nodes=tops)
    return len(matching) // 2


class TestHopcroftKarp:
    def test_perfect_matching_on_identity(self):
        g = BipartiteGraph.from_edges(3, 3, [(i, i) for i in range(3)])
        assert hopcroft_karp(g).size() == 3

    def test_empty_graph(self):
        assert hopcroft_karp(BipartiteGraph(0, 0)).size() == 0
        assert hopcroft_karp(BipartiteGraph(3, 0)).size() == 0

    def test_requires_augmenting_path(self):
        # Classic case where greedy gets stuck but HK augments:
        # t0-{b0,b1}, t1-{b0}.  Greedy (t0,b0) forces augmentation.
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert hopcroft_karp(g).size() == 2

    def test_long_augmenting_path_no_recursion_error(self):
        # Path graph of 3000 alternating edges.
        n = 3000
        edges = [(i, i) for i in range(n)]
        edges += [(i + 1, i) for i in range(n - 1)]
        g = BipartiteGraph.from_edges(n, n, edges)
        assert hopcroft_karp(g).size() == n

    def test_seed_matching_is_extended_not_mutated(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])
        seed = Matching(2, 2)
        seed.match(0, 0)
        result = hopcroft_karp(g, seed_matching=seed)
        assert result.size() == 2
        assert seed.size() == 1  # untouched

    @given(bipartite_graphs())
    def test_result_is_valid_matching(self, g):
        matching = hopcroft_karp(g)
        matching.check(g)

    @given(bipartite_graphs())
    def test_maximum_size_matches_networkx(self, g):
        assert hopcroft_karp(g).size() == networkx_max_matching_size(g)

    @given(bipartite_graphs())
    def test_no_augmenting_path_remains(self, g):
        matching = hopcroft_karp(g)
        # König-style check: BFS from free tops along alternating edges
        # must never reach a free bottom.
        frontier = set(matching.free_tops())
        seen_tops = set(frontier)
        while frontier:
            next_frontier = set()
            for top in frontier:
                for bottom in g.adj[top]:
                    owner = matching.top_of[bottom]
                    if owner == Matching.UNMATCHED:
                        raise AssertionError("augmenting path exists")
                    if owner not in seen_tops:
                        seen_tops.add(owner)
                        next_frontier.add(owner)
            frontier = next_frontier


class TestKuhn:
    @given(bipartite_graphs(max_side=8))
    def test_agrees_with_hopcroft_karp(self, g):
        assert kuhn_matching(g).size() == hopcroft_karp(g).size()

    @given(bipartite_graphs(max_side=8))
    def test_result_is_valid_matching(self, g):
        kuhn_matching(g).check(g)

    def test_random_large_instance(self):
        rng = random.Random(42)
        g = BipartiteGraph(60, 60)
        for t in range(60):
            for b in rng.sample(range(60), 5):
                g.add_edge(t, b)
        assert kuhn_matching(g).size() == hopcroft_karp(g).size()
