"""Unit tests for alternating-path search and prefix transfer."""

import pytest

from repro.matching.alternating import (
    alternating_bfs,
    bottoms_to_tops,
    flip_prefix,
)
from repro.matching.bipartite import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import hopcroft_karp


def example_from_fig3():
    """The bipartite graph of the paper's Fig. 3(b).

    Tops (V2): b=0, e=1, h=2.  Bottoms (V1): c=0, f=1, i=2, j=3.
    Edges: b-c, b-i, e-c, e-f, h-i, h-j.  Matching of Fig. 3(c):
    (b,c), (e,f), (h,j); bottom i is free.
    """
    graph = BipartiteGraph.from_edges(
        3, 4, [(0, 0), (0, 2), (1, 0), (1, 1), (2, 2), (2, 3)])
    matching = Matching(3, 4)
    matching.match(0, 0)
    matching.match(1, 1)
    matching.match(2, 3)
    return graph, matching


class TestBottomsToTops:
    def test_reverse_adjacency(self):
        graph, _ = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        assert reverse[0] == [0, 1]   # c is adjacent to b and e
        assert reverse[2] == [0, 2]   # i is adjacent to b and h


class TestAlternatingBFS:
    def test_paper_fig3_path_from_b(self):
        """Fig. 3(d): the alternating path b - c - e - f."""
        graph, matching = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [0])  # start at b
        assert forest.reached(0)
        assert forest.reached(1)          # e, at odd position 3
        assert forest.path_to(1) == [0, 1]

    def test_multi_source_covers_both_parents_of_i(self):
        """Free bottom i has covered parents b and h; one BFS covers
        both label entries of the paper's Example 1."""
        graph, matching = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [0, 2])
        # b reaches e (via c); h reaches e too but b got there first —
        # the shared segment is traversed once (Sec. IV.B redundancy).
        assert set(forest.order) == {0, 1, 2}
        assert forest.root_of[1] in (0, 2)

    def test_uncovered_sources_are_skipped(self):
        graph, matching = example_from_fig3()
        matching.unmatch_top(0)
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [0])
        assert forest.order == []

    def test_does_not_walk_through_free_tops(self):
        # top0 - bottom0 matched; top1 adjacent to bottom0 but free.
        graph = BipartiteGraph.from_edges(2, 1, [(0, 0), (1, 0)])
        matching = Matching(2, 1)
        matching.match(0, 0)
        forest = alternating_bfs(matching, bottoms_to_tops(graph), [0])
        assert forest.reached(0)
        assert not forest.reached(1)


class TestFlipPrefix:
    def test_flip_reroutes_matching(self):
        """Flipping b..f frees b (to adopt i) and frees f."""
        graph, matching = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [0])
        root, freed = flip_prefix(matching, forest, 1)  # end at e
        assert root == 0          # b freed at the top
        assert freed == 1         # f freed at the bottom
        assert matching.bottom_of[1] == 0  # e re-matched to c
        assert matching.size() == 2
        matching.check(graph)

    def test_flip_single_source(self):
        graph, matching = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [2])  # start at h
        root, freed = flip_prefix(matching, forest, 2)    # end at h itself
        assert root == 2
        assert freed == 3          # j freed
        assert matching.size() == 2

    def test_flip_rejects_unmatched_path(self):
        graph, matching = example_from_fig3()
        reverse = bottoms_to_tops(graph)
        forest = alternating_bfs(matching, reverse, [0])
        matching.unmatch_top(1)
        with pytest.raises(ValueError):
            flip_prefix(matching, forest, 1)

    def test_flip_preserves_matching_validity_on_larger_instance(self):
        graph = BipartiteGraph.from_edges(
            5, 5, [(i, i) for i in range(5)] + [(i + 1, i)
                                                for i in range(4)])
        matching = hopcroft_karp(graph)
        forest = alternating_bfs(matching, bottoms_to_tops(graph), [0])
        deepest = forest.order[-1]
        size_before = matching.size()
        flip_prefix(matching, forest, deepest)
        matching.check(graph)
        assert matching.size() == size_before - 1
