"""Unit tests for dual labeling (tree cover, links, TLC, index)."""

from hypothesis import given, settings

from repro.baselines.dual.index import DualLabelingIndex
from repro.baselines.dual.links import build_link_set
from repro.baselines.dual.tlc import build_tlc
from repro.baselines.dual.tree_cover import build_tree_cover
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph, semi_random_dag

from tests.conftest import all_pairs_oracle, bfs_reachable, small_dags


class TestTreeCover:
    def test_tree_graph_has_no_links(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3)])
        cover = build_tree_cover(g)
        assert cover.non_tree_edges(g) == []
        assert cover.in_subtree(g.node_id(0), g.node_id(3))
        assert not cover.in_subtree(g.node_id(2), g.node_id(3))

    def test_intervals_nest(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        cover = build_tree_cover(g)
        for child, parent in enumerate(cover.parent):
            if parent != -1:
                assert cover.start[parent] < cover.start[child]
                assert cover.end[child] <= cover.end[parent]

    @given(small_dags(min_nodes=1))
    def test_tree_plus_links_partition_edges(self, g):
        cover = build_tree_cover(g)
        tree_edges = sum(1 for p in cover.parent if p != -1)
        assert tree_edges + len(cover.non_tree_edges(g)) == g.num_edges

    def test_children_lists(self):
        g = DiGraph.from_edges([(0, 1), (0, 2)])
        cover = build_tree_cover(g)
        children = cover.children_lists(3)
        assert sorted(children[g.node_id(0)]) == [g.node_id(1),
                                                  g.node_id(2)]


class TestLinkClosure:
    def test_no_links_on_a_tree(self):
        g = chain_graph(5)
        links = build_link_set(g, build_tree_cover(g))
        assert links.count == 0

    @given(small_dags())
    def test_closure_is_reflexive(self, g):
        cover = build_tree_cover(g)
        links = build_link_set(g, cover)
        for i in range(links.count):
            assert (links.closure[i] >> i) & 1

    @given(small_dags())
    def test_closure_matches_link_reachability_oracle(self, g):
        """link i reaches link j iff target(i) ⇝ source(j) in G (or
        i == j) — tree descents between links are real paths."""
        cover = build_tree_cover(g)
        links = build_link_set(g, cover)
        for i in range(links.count):
            for j in range(links.count):
                got = bool((links.closure[i] >> j) & 1)
                if i == j:
                    assert got
                    continue
                expected = bfs_reachable(
                    g, g.node_at(links.targets[i]),
                    g.node_at(links.sources[j]))
                # The closure may be *narrower* than full reachability
                # (it only composes tree descents), but combined with
                # the tree intervals the index answers are exact — the
                # index tests below assert that.  Here: no false hits.
                if got and i != j:
                    assert expected

    def test_source_range_is_contiguous(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)])
        cover = build_tree_cover(g)
        links = build_link_set(g, cover)
        lo, hi = links.source_range(g.node_id(0), cover)
        assert (lo, hi) == (0, links.count)


class TestTLC:
    def test_empty_when_no_links(self):
        g = chain_graph(4)
        cover = build_tree_cover(g)
        links = build_link_set(g, cover)
        tlc = build_tlc(cover, links, g.num_nodes)
        assert tlc.ones == []
        assert not tlc.hit(0, 0, 0)

    def test_size_words_counts_columns_and_ones(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        cover = build_tree_cover(g)
        links = build_link_set(g, cover)
        tlc = build_tlc(cover, links, g.num_nodes)
        assert tlc.size_words() >= g.num_nodes


class TestIndex:
    def test_paper_graph_queries(self, paper_graph):
        index = DualLabelingIndex.build(paper_graph)
        for (u, v), expected in all_pairs_oracle(paper_graph).items():
            assert index.is_reachable(u, v) == expected

    @settings(max_examples=120)
    @given(small_dags())
    def test_matches_oracle(self, g):
        index = DualLabelingIndex.build(g)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected, (u, v)

    def test_num_links_exposed(self, paper_graph):
        index = DualLabelingIndex.build(paper_graph)
        spanning = paper_graph.num_nodes - 2  # two roots -> forest
        assert index.num_links == paper_graph.num_edges - spanning

    @settings(max_examples=60)
    @given(small_dags())
    def test_dense_variant_matches_oracle(self, g):
        """Dual-I (dense matrix, O(1) queries) answers identically."""
        index = DualLabelingIndex.build(g, variant="dense")
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected, (u, v)

    def test_dense_variant_uses_more_space(self):
        g = semi_random_dag(150, 120, seed=2)
        compressed = DualLabelingIndex.build(g)
        dense = DualLabelingIndex.build(g, variant="dense")
        assert dense.size_words() >= compressed.size_words()
        assert dense.variant == "dense"
        assert compressed.variant == "search-tree"
        # dense_size_words is the identity on the dense variant and an
        # estimate on the compressed one.
        assert dense.dense_size_words() == dense.size_words()
        assert compressed.dense_size_words() >= compressed.size_words()

    def test_unknown_variant_rejected(self, paper_graph):
        import pytest
        with pytest.raises(ValueError, match="variant"):
            DualLabelingIndex.build(paper_graph, variant="huh")

    def test_space_grows_with_non_tree_edges(self):
        sparse = semi_random_dag(100, 5, seed=1)
        dense_ish = semi_random_dag(100, 200, seed=1)
        small = DualLabelingIndex.build(sparse).size_words()
        large = DualLabelingIndex.build(dense_ish).size_words()
        assert large > small
