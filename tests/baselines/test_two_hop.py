"""Unit tests for the 2-hop cover baseline."""

from hypothesis import given, settings

from repro.baselines.two_hop import TwoHopIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph, random_dag

from tests.conftest import all_pairs_oracle, small_dags


class TestTwoHop:
    def test_paper_graph_queries(self, paper_graph):
        index = TwoHopIndex.build(paper_graph)
        for (u, v), expected in all_pairs_oracle(paper_graph).items():
            assert index.is_reachable(u, v) == expected

    def test_empty_graph(self):
        index = TwoHopIndex.build(DiGraph())
        assert index.size_words() == 0

    def test_single_node(self):
        g = DiGraph()
        g.add_node("x")
        index = TwoHopIndex.build(g)
        assert index.is_reachable("x", "x")

    def test_chain_graph_labels_are_small(self):
        # A single chain is covered by a handful of centers.
        g = chain_graph(16)
        index = TwoHopIndex.build(g)
        assert index.size_words() < 16 * 16

    def test_label_size_accessor(self, paper_graph):
        index = TwoHopIndex.build(paper_graph)
        out_size, in_size = index.label_size("a")
        assert out_size >= 1

    @settings(max_examples=60, deadline=None)
    @given(small_dags(max_nodes=10))
    def test_matches_oracle(self, g):
        index = TwoHopIndex.build(g)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected

    def test_labels_sorted_for_merge_intersection(self):
        g = random_dag(12, 0.3, seed=5)
        index = TwoHopIndex.build(g)
        for labels in list(index._cout) + list(index._cin):
            assert list(labels) == sorted(labels)

    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=8))
    def test_naive_mode_is_equivalent(self, g):
        """The exhaustive-greedy mode (the paper's cost profile) gives
        the same answers as the lazy-greedy default."""
        lazy = TwoHopIndex.build(g, lazy=True)
        naive = TwoHopIndex.build(g, lazy=False)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert lazy.is_reachable(u, v) == expected
            assert naive.is_reachable(u, v) == expected
