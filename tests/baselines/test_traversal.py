"""Unit tests for the online-traversal baseline."""

from hypothesis import given

from repro.baselines.traversal import TraversalIndex

from tests.conftest import all_pairs_oracle, small_dags


class TestTraversal:
    def test_paper_graph(self, paper_graph):
        index = TraversalIndex.build(paper_graph)
        assert index.is_reachable("a", "e")
        assert index.is_reachable("e", "e")
        assert not index.is_reachable("e", "a")

    def test_size_is_zero(self, paper_graph):
        assert TraversalIndex.build(paper_graph).size_words() == 0

    def test_name(self):
        assert TraversalIndex.name == "traversal"

    @given(small_dags())
    def test_matches_oracle(self, g):
        index = TraversalIndex.build(g)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected
