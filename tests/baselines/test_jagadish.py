"""Unit tests for the Jagadish DD heuristic."""

from hypothesis import given

from repro.baselines.jagadish import JagadishIndex, jagadish_chain_cover
from repro.core.closure_cover import dag_width
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph, sparse_random_dag

from tests.conftest import all_pairs_oracle, small_dags


class TestDecomposition:
    def test_chain_graph_is_one_path(self):
        cover = jagadish_chain_cover(chain_graph(5))
        assert cover.num_chains == 1

    def test_empty_graph(self):
        assert jagadish_chain_cover(DiGraph()).num_chains == 0

    def test_stitching_reduces_path_count(self):
        # Two node-disjoint edge paths whose junction forces stitching:
        # 0->1->2 and 3 with 2 ⇝ 3 via edge.
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        cover = jagadish_chain_cover(g)
        cover.check(g)
        assert cover.num_chains == dag_width(g)

    @given(small_dags())
    def test_cover_is_valid_partition(self, g):
        cover = jagadish_chain_cover(g)
        cover.check(g)

    @given(small_dags())
    def test_chain_count_at_least_width(self, g):
        assert jagadish_chain_cover(g).num_chains >= dag_width(g)

    def test_usually_more_chains_than_minimum(self):
        """The paper's premise: DD's chain count normally exceeds the
        width.  Check the inflation is visible on Group-I graphs."""
        total_dd = total_width = 0
        for seed in range(5):
            g = sparse_random_dag(200, 240, seed=seed)
            total_dd += jagadish_chain_cover(g).num_chains
            total_width += dag_width(g)
        assert total_dd > total_width


class TestIndex:
    def test_paper_graph_queries(self, paper_graph):
        index = JagadishIndex.build(paper_graph)
        for (u, v), expected in all_pairs_oracle(paper_graph).items():
            assert index.is_reachable(u, v) == expected

    @given(small_dags())
    def test_matches_oracle(self, g):
        index = JagadishIndex.build(g)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected

    def test_size_words_scales_with_chain_count(self, paper_graph):
        index = JagadishIndex.build(paper_graph)
        assert index.size_words() >= 2 * paper_graph.num_nodes
        assert index.num_chains >= 3
