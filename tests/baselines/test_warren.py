"""Unit tests for Warren's matrix transitive closure (MM)."""

from hypothesis import given

from repro.baselines.warren import WarrenIndex, warren_closure_rows
from repro.graph.closure import descendants_bitsets
from repro.graph.digraph import DiGraph

from tests.conftest import all_pairs_oracle, small_dags, small_digraphs


class TestClosureRows:
    @given(small_dags())
    def test_matches_reference_closure_on_dags(self, g):
        assert warren_closure_rows(g) == descendants_bitsets(g)

    @given(small_digraphs())
    def test_handles_cyclic_graphs_too(self, g):
        """Warshall-family algorithms work on arbitrary digraphs."""
        rows = warren_closure_rows(g)
        oracle = all_pairs_oracle(g)
        for u in g.nodes():
            for v in g.nodes():
                if u == v:
                    continue
                expected = oracle[(u, v)]
                got = bool((rows[g.node_id(u)] >> g.node_id(v)) & 1)
                assert got == expected, (u, v)


class TestIndex:
    def test_paper_graph(self, paper_graph):
        index = WarrenIndex.build(paper_graph)
        for (u, v), expected in all_pairs_oracle(paper_graph).items():
            assert index.is_reachable(u, v) == expected

    def test_size_is_matrix_words(self, paper_graph):
        index = WarrenIndex.build(paper_graph)
        n = paper_graph.num_nodes
        assert index.size_words() == (n * n + 15) // 16

    def test_empty_graph(self):
        index = WarrenIndex.build(DiGraph())
        assert index.size_words() == 0
