"""Unit tests for Chen's tree encoding (TE)."""

from hypothesis import given

from repro.baselines.tree_encoding import (
    TreeEncodingIndex,
    merge_pair_sequences,
    spanning_branching_intervals,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph

from tests.conftest import all_pairs_oracle, small_dags


class TestIntervals:
    def test_tree_subtree_containment(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3)])
        pre, end = spanning_branching_intervals(g)
        # Node 0's interval covers everything.
        assert pre[0] == 0 and end[0] == 3
        for v in range(1, 4):
            assert pre[0] <= pre[v] <= end[0]

    def test_forest_with_multiple_roots(self):
        g = DiGraph.from_edges([(0, 1)], nodes=[2])
        pre, end = spanning_branching_intervals(g)
        assert sorted([pre[0], pre[1], pre[2]]) == [0, 1, 2]

    @given(small_dags(min_nodes=1))
    def test_every_node_gets_an_interval(self, g):
        pre, end = spanning_branching_intervals(g)
        assert sorted(pre) == list(range(g.num_nodes))
        for v in range(g.num_nodes):
            assert end[v] >= pre[v]


class TestMerge:
    def test_dominated_pairs_dropped(self):
        merged = merge_pair_sequences([(0, 9), (2, 5), (1, 9), (3, 4)])
        assert merged == [(0, 9)]

    def test_incomparable_pairs_kept_sorted(self):
        merged = merge_pair_sequences([(4, 5), (0, 1), (2, 3)])
        assert merged == [(0, 1), (2, 3), (4, 5)]

    def test_empty(self):
        assert merge_pair_sequences([]) == []

    def test_equal_starts_keep_largest_end(self):
        assert merge_pair_sequences([(1, 3), (1, 7)]) == [(1, 7)]

    def test_result_strictly_increasing_in_both_components(self):
        merged = merge_pair_sequences(
            [(0, 2), (1, 5), (1, 3), (4, 9), (5, 9)])
        starts = [p for p, _ in merged]
        ends = [q for _, q in merged]
        assert starts == sorted(set(starts))
        assert ends == sorted(set(ends))


class TestIndex:
    def test_paper_graph_queries(self, paper_graph):
        index = TreeEncodingIndex.build(paper_graph)
        for (u, v), expected in all_pairs_oracle(paper_graph).items():
            assert index.is_reachable(u, v) == expected

    @given(small_dags())
    def test_matches_oracle(self, g):
        index = TreeEncodingIndex.build(g)
        for (u, v), expected in all_pairs_oracle(g).items():
            assert index.is_reachable(u, v) == expected

    def test_chain_graph_has_unit_sequences(self):
        g = chain_graph(5)
        index = TreeEncodingIndex.build(g)
        for v in range(5):
            assert index.sequence_length(v) == 1

    def test_size_words(self):
        g = chain_graph(3)
        index = TreeEncodingIndex.build(g)
        # 3 preorder numbers + 3 sequences of one pair (2 words each).
        assert index.size_words() == 3 + 6
