"""Engine adapters: forwarding, batch fallback, condensation lift,
and the shared NodeNotFoundError contract (every engine, ``.role``
always set)."""

import pytest

import repro.engine as engine
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.obs import OBS

CYCLIC_EDGES = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"),
                ("x", "y")]


def cyclic_graph() -> DiGraph:
    return DiGraph.from_edges(CYCLIC_EDGES)


def dag() -> DiGraph:
    return DiGraph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])


def engines_under_test():
    """(name, built engine) for every registered engine."""
    built = []
    for name in engine.names():
        graph = (dag() if name in ("dynamic", "dynamic-tol")
                 else cyclic_graph())
        built.append(pytest.param(engine.build(name, graph), id=name))
    return built


class TestSharedErrorContract:
    """Satellite: NodeNotFoundError must carry ``.role`` on *every*
    engine — including DynamicChainIndex, which used to raise bare."""

    @pytest.mark.parametrize("built", engines_under_test())
    def test_unknown_source_sets_role(self, built):
        with pytest.raises(NodeNotFoundError) as excinfo:
            built.is_reachable("missing", "a")
        assert excinfo.value.role == "source"

    @pytest.mark.parametrize("built", engines_under_test())
    def test_unknown_target_sets_role(self, built):
        with pytest.raises(NodeNotFoundError) as excinfo:
            built.is_reachable("a", "missing")
        assert excinfo.value.role == "target"

    @pytest.mark.parametrize("built", engines_under_test())
    def test_batch_path_sets_role_too(self, built):
        with pytest.raises(NodeNotFoundError) as excinfo:
            built.is_reachable_many([("a", "a"), ("a", "missing")])
        assert excinfo.value.role == "target"

    def test_dynamic_index_roles_directly(self):
        """The underlying DynamicChainIndex itself (not just the
        adapter) reports the offending operand."""
        from repro.core.maintenance import DynamicChainIndex
        index = DynamicChainIndex.from_graph(dag())
        with pytest.raises(NodeNotFoundError) as excinfo:
            index.is_reachable("zzz", "a")
        assert excinfo.value.role == "source"
        with pytest.raises(NodeNotFoundError) as excinfo:
            index.is_reachable("a", "zzz")
        assert excinfo.value.role == "target"


class TestBatchFallback:
    def test_baselines_answer_batches_through_the_fallback(self):
        built = engine.build("two-hop", cyclic_graph())
        assert not built.supports_batch
        assert built.is_reachable_many(
            [("a", "d"), ("d", "a"), ("a", "y"), ("b", "b")]) == \
            [True, False, False, True]

    def test_fallback_counts_queries_once_per_batch(self):
        built = engine.build("bfs", cyclic_graph())
        with OBS.capture() as metrics:
            built.is_reachable_many([("a", "b"), ("a", "d")])
        assert metrics.counters["engine/queries/bfs"] == 2

    def test_chain_engine_counts_batch_queries(self):
        built = engine.build("chain-stratified", cyclic_graph())
        with OBS.capture() as metrics:
            built.is_reachable_many([("a", "b"), ("a", "d")])
        assert metrics.counters[
            "engine/queries/chain-stratified"] == 2


class TestForwarding:
    def test_chain_engine_forwards_the_index_surface(self):
        built = engine.build("chain-stratified", cyclic_graph())
        assert built.num_chains >= 1
        assert built.prefilter_rejects("d", "a") in (True, False)
        assert set(built.descendants("a")) == {"a", "b", "c", "d"}

    def test_unknown_attribute_still_raises(self):
        built = engine.build("chain-stratified", cyclic_graph())
        with pytest.raises(AttributeError):
            built.definitely_not_a_member

    def test_describe_reports_name_and_capabilities(self):
        built = engine.build("chain-closure", cyclic_graph())
        info = built.describe()
        assert info["engine"] == "chain-closure"
        assert info["capabilities"]["supports_batch"] is True
        assert info["size_words"] == built.size_words()


class TestCondensingEngine:
    def test_cyclic_input_answers_through_scc_representatives(self):
        built = engine.build("warren", cyclic_graph())
        assert built.is_reachable("a", "c")   # same SCC: reflexive
        assert built.is_reachable("c", "b")   # around the cycle
        assert built.is_reachable("a", "d")
        assert not built.is_reachable("d", "a")

    def test_describe_names_the_wrapped_implementation(self):
        built = engine.build("tree-cover", cyclic_graph())
        assert built.describe()["implementation"] == \
            "TreeEncodingIndex"

    def test_agrees_with_chain_index_on_the_cyclic_graph(self):
        graph = cyclic_graph()
        reference = engine.build("chain-stratified", graph)
        pairs = [(u, v) for u in graph.nodes() for v in graph.nodes()]
        expected = reference.is_reachable_many(pairs)
        for name in ("bfs", "warren", "jagadish", "tree-cover",
                     "two-hop", "dual"):
            assert engine.build(name, graph).is_reachable_many(
                pairs) == expected, name
