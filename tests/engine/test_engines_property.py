"""Property: every engine answers exactly like the BFS oracle.

The central equivalence the engine seam must preserve:
``CompositeEngine ≡ ChainIndex ≡ BFS`` on random multi-component
digraphs — cycles allowed, single-node components included — plus the
same equivalence for every registered engine on smaller corpora.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine as engine
from repro.core.index import ChainIndex
from repro.engine.composite import CompositeEngine
from repro.graph.digraph import DiGraph

from tests.conftest import bfs_reachable, small_digraphs


@st.composite
def multi_component_digraphs(draw) -> DiGraph:
    """A disjoint union of 1–3 small digraphs (cycles allowed) plus
    0–2 isolated nodes, with disjoint integer labels."""
    parts = draw(st.lists(small_digraphs(max_nodes=6), min_size=1,
                          max_size=3))
    isolated = draw(st.integers(min_value=0, max_value=2))
    graph = DiGraph()
    offset = 0
    for part in parts:
        for node in part.nodes():
            graph.add_node(node + offset)
        for tail, head in part.edges():
            graph.add_edge(tail + offset, head + offset)
        offset += part.num_nodes
    for _ in range(isolated):
        graph.add_node(offset)
        offset += 1
    return graph


def all_pairs(graph: DiGraph) -> list[tuple]:
    nodes = graph.nodes()
    return [(u, v) for u in nodes for v in nodes]


@given(graph=multi_component_digraphs())
@settings(max_examples=60, deadline=None)
def test_composite_equals_chain_index_equals_bfs(graph):
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    chain = ChainIndex.build(graph)
    assert chain.is_reachable_many(pairs) == oracle
    composite = CompositeEngine.build(graph)
    assert composite.is_reachable_many(pairs) == oracle
    assert [composite.is_reachable(u, v) for u, v in pairs] == oracle


@given(graph=multi_component_digraphs())
@settings(max_examples=20, deadline=None)
def test_composite_over_baseline_sub_engines_equals_bfs(graph):
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    for sub in ("bfs", "warren"):
        composite = CompositeEngine.build(graph, engine=sub)
        assert composite.is_reachable_many(pairs) == oracle, sub


@given(graph=small_digraphs(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_every_registered_engine_equals_bfs(graph):
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    for name in engine.names():
        if name in ("dynamic", "dynamic-tol"):
            continue                     # DAG-only, covered below
        built = engine.build(name, graph)
        assert built.is_reachable_many(pairs) == oracle, name


@given(graph=small_digraphs(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_dynamic_engine_equals_bfs_on_dags(graph):
    from hypothesis import assume

    from repro.graph.errors import NotADAGError
    from repro.graph.topology import check_dag
    try:
        check_dag(graph)
    except NotADAGError:
        assume(False)                    # dynamic requires a DAG
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    assert engine.build("dynamic",
                        graph).is_reachable_many(pairs) == oracle
    assert engine.build("dynamic-tol",
                        graph).is_reachable_many(pairs) == oracle
