"""The engine registry: names, specs, capability flags, validation."""

import pytest

import repro.engine as engine
from repro.core.index import CHAIN_METHODS
from repro.graph.digraph import DiGraph


@pytest.fixture
def graph() -> DiGraph:
    return DiGraph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])


class TestRegistryContents:
    def test_every_chain_method_is_registered(self):
        for method in CHAIN_METHODS:
            assert f"chain-{method}" in engine.names()

    def test_chain_methods_derive_from_the_registry(self):
        assert engine.chain_methods() == CHAIN_METHODS

    def test_names_are_sorted_and_specs_keep_registration_order(self):
        names = engine.names()
        assert list(names) == sorted(names)
        assert [spec.name for spec in engine.specs()][0] == \
            "chain-stratified"

    def test_paper_labels_cover_the_papers_seven_methods(self):
        assert set(engine.paper_labels()) == {
            "ours", "DD", "TE", "Dual-II", "2-hop", "MM", "traversal"}

    def test_the_stratified_engine_is_ours(self):
        assert engine.paper_labels()["ours"].name == "chain-stratified"

    def test_capabilities_dict_has_all_five_flags(self):
        for spec in engine.specs():
            assert set(spec.capabilities) == set(
                engine.CAPABILITY_FLAGS)

    def test_only_the_dynamic_engines_are_writable(self):
        writable = [spec.name for spec in engine.specs()
                    if spec.writable]
        assert writable == ["dynamic", "dynamic-tol"]

    def test_only_dynamic_tol_is_deletable(self):
        deletable = [spec.name for spec in engine.specs()
                     if spec.deletable]
        assert deletable == ["dynamic-tol"]
        assert all(spec.writable for spec in engine.specs()
                   if spec.deletable)

    def test_persistable_engines(self):
        persistable = {spec.name for spec in engine.specs()
                       if spec.persistable}
        assert persistable == {"chain-stratified", "chain-closure",
                               "chain-jagadish", "chain-concat",
                               "composite"}


class TestRegistryValidation:
    def test_unknown_name_raises_with_the_known_names(self):
        with pytest.raises(ValueError, match="chain-stratified"):
            engine.get("nope")

    def test_duplicate_registration_rejected(self):
        spec = engine.get("bfs")
        with pytest.raises(ValueError, match="already registered"):
            engine.register(spec)

    def test_bad_names_rejected(self):
        from repro.engine.registry import EngineSpec
        bad = EngineSpec(name="Not_Kebab", description="x",
                         factory=lambda g: None, supports_batch=False,
                         writable=False, persistable=False,
                         enumerable=False)
        with pytest.raises(ValueError, match="kebab-case"):
            engine.register(bad)


class TestBuiltEngines:
    def test_every_engine_satisfies_the_protocol(self, graph):
        for name in engine.names():
            if name == "dynamic":
                continue
            built = engine.build(name, graph)
            assert isinstance(built, engine.ReachabilityEngine)

    def test_built_flags_match_the_spec(self, graph):
        for spec in engine.specs():
            if spec.name == "dynamic":
                continue
            built = spec.build(graph)
            assert engine.capabilities(built) == spec.capabilities, \
                spec.name

    def test_build_emits_the_engine_build_span(self, graph):
        from repro.obs import OBS
        with OBS.capture() as metrics:
            engine.build("two-hop", graph)
        assert "engine/build/two-hop" in metrics.spans

    def test_dynamic_engine_accepts_writes(self):
        dag = DiGraph.from_edges([("a", "b")])
        built = engine.build("dynamic", dag)
        assert built.writable
        built.add_node("c")
        built.add_edge("b", "c")
        assert built.is_reachable("a", "c")

    def test_composite_rejects_composite_sub_engine(self, graph):
        with pytest.raises(ValueError, match="composite"):
            engine.build("composite", graph, engine="composite")


class TestObservedSpecs:
    """The derived ``observed:<engine>`` registry entries."""

    def test_every_engine_has_an_observed_variant(self):
        for name in engine.names():
            spec = engine.get(engine.OBSERVED_PREFIX + name)
            assert spec.name == f"observed:{name}"

    def test_observed_names_stay_out_of_the_listing(self):
        assert not any(name.startswith(engine.OBSERVED_PREFIX)
                       for name in engine.names())

    def test_observed_flags_inherit_from_the_inner_spec(self):
        for name in engine.names():
            inner = engine.get(name)
            observed = engine.get(engine.OBSERVED_PREFIX + name)
            assert observed.capabilities == inner.capabilities, name
            assert observed.paper_label is None

    def test_derived_specs_are_cached(self):
        first = engine.get("observed:bfs")
        assert engine.get("observed:bfs") is first

    def test_observer_chains_do_not_stack(self):
        with pytest.raises(ValueError, match="do not stack"):
            engine.get("observed:observed:bfs")

    def test_unknown_inner_engine_still_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            engine.get("observed:nope")

    def test_observed_build_wraps_the_inner_engine(self, graph):
        built = engine.build("observed:chain-stratified", graph)
        assert built.name == "observed:chain-stratified"
        assert built.inner.name == "chain-stratified"
        assert built.is_reachable("a", "c")
        assert not built.is_reachable("a", "y")
