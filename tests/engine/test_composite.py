"""CompositeEngine: partitioning, routing, parallel builds, and the
format-v3 persistence round trip."""

import io
import json

import pytest

import repro.engine as engine
from repro.core.persistence import load_index, save_index
from repro.engine.composite import CompositeEngine
from repro.graph.components import weakly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    GraphFormatError,
    IndexFormatError,
    NodeNotFoundError,
)

EDGES = [("a", "b"), ("b", "c"), ("c", "a"),       # one cyclic component
         ("p", "q"), ("q", "r"),                   # one chain
         ("x", "y")]                               # one edge
LONERS = ["solo"]                                  # one single node


def graph() -> DiGraph:
    return DiGraph.from_edges(EDGES, nodes=LONERS)


def all_pairs(g: DiGraph) -> list[tuple]:
    return [(u, v) for u in g.nodes() for v in g.nodes()]


class TestPartitioning:
    def test_components_found(self):
        g = graph()
        members = weakly_connected_components(g)
        assert sorted(sorted(map(str, part)) for part in members) == \
            [["a", "b", "c"], ["p", "q", "r"], ["solo"], ["x", "y"]]

    def test_composite_partitions_match_the_components(self):
        composite = CompositeEngine.build(graph())
        assert composite.num_partitions == 4
        assert sorted(composite.partition_sizes()) == [1, 2, 3, 3]

    def test_single_component_graph_builds_one_partition(self):
        composite = CompositeEngine.build(
            DiGraph.from_edges([("a", "b"), ("b", "c")]))
        assert composite.num_partitions == 1

    def test_empty_graph(self):
        composite = CompositeEngine.build(DiGraph())
        assert composite.num_partitions == 0
        assert composite.is_reachable_many([]) == []
        assert composite.size_words() == 0


class TestRouting:
    def test_cross_component_pairs_are_false(self):
        composite = CompositeEngine.build(graph())
        assert not composite.is_reachable("a", "x")
        assert not composite.is_reachable("solo", "p")

    def test_same_component_pairs_route_to_the_sub_engine(self):
        composite = CompositeEngine.build(graph())
        assert composite.is_reachable("a", "c")      # via the cycle
        assert composite.is_reachable("p", "r")
        assert composite.is_reachable("solo", "solo")
        assert not composite.is_reachable("r", "p")

    def test_batch_matches_scalar(self):
        g = graph()
        composite = CompositeEngine.build(g)
        pairs = all_pairs(g)
        assert composite.is_reachable_many(pairs) == [
            composite.is_reachable(u, v) for u, v in pairs]

    def test_unknown_nodes_raise_with_role(self):
        composite = CompositeEngine.build(graph())
        with pytest.raises(NodeNotFoundError) as excinfo:
            composite.is_reachable("nope", "a")
        assert excinfo.value.role == "source"
        with pytest.raises(NodeNotFoundError) as excinfo:
            composite.is_reachable_many([("a", "nope")])
        assert excinfo.value.role == "target"

    def test_cross_rejects_are_counted(self):
        from repro.obs import OBS
        composite = CompositeEngine.build(graph())
        with OBS.capture() as metrics:
            composite.is_reachable("a", "x")
            composite.is_reachable_many(
                [("a", "x"), ("p", "r"), ("solo", "a")])
        assert metrics.counters["engine/cross_rejects"] == 3
        assert metrics.counters["engine/queries/composite"] == 3

    def test_enumeration_stays_inside_the_component(self):
        composite = CompositeEngine.build(graph())
        assert set(composite.descendants("p")) == {"p", "q", "r"}
        assert set(composite.ancestors("y")) == {"x", "y"}

    def test_enumeration_refused_for_non_enumerable_sub_engines(self):
        composite = CompositeEngine.build(graph(), engine="bfs")
        assert not composite.enumerable
        with pytest.raises(TypeError, match="bfs"):
            composite.descendants("a")


class TestSubEngines:
    @pytest.mark.parametrize("sub", ["chain-stratified", "bfs",
                                     "warren", "two-hop"])
    def test_answers_are_sub_engine_independent(self, sub):
        g = graph()
        expected = CompositeEngine.build(g).is_reachable_many(
            all_pairs(g))
        assert CompositeEngine.build(g, engine=sub).is_reachable_many(
            all_pairs(g)) == expected

    def test_capability_flags_inherit_from_the_sub_engines(self):
        chain = CompositeEngine.build(graph())
        assert chain.persistable and chain.enumerable
        bfs = CompositeEngine.build(graph(), engine="bfs")
        assert not bfs.persistable and not bfs.enumerable

    def test_components_gauge_emitted(self):
        from repro.obs import OBS
        with OBS.capture() as metrics:
            CompositeEngine.build(graph())
        assert metrics.gauges["engine/components"] == 4


class TestParallelBuild:
    def test_parallel_build_equals_serial_build(self):
        g = graph()
        serial = CompositeEngine.build(g)
        parallel = CompositeEngine.build(g, max_workers=2)
        assert parallel.num_partitions == serial.num_partitions
        assert parallel.partition_sizes() == serial.partition_sizes()
        assert parallel.is_reachable_many(all_pairs(g)) == \
            serial.is_reachable_many(all_pairs(g))

    def test_parallel_build_of_baseline_sub_engines(self):
        g = graph()
        parallel = CompositeEngine.build(g, engine="warren",
                                         max_workers=2)
        assert parallel.is_reachable("a", "c")
        assert not parallel.is_reachable("a", "x")


class TestPersistenceV3:
    def test_round_trip(self):
        g = graph()
        composite = CompositeEngine.build(g)
        buffer = io.StringIO()
        save_index(composite, buffer)
        buffer.seek(0)
        loaded = load_index(buffer)
        assert isinstance(loaded, CompositeEngine)
        assert loaded.num_partitions == composite.num_partitions
        assert loaded.sub_engine == composite.sub_engine
        assert loaded.is_reachable_many(all_pairs(g)) == \
            composite.is_reachable_many(all_pairs(g))
        assert loaded.persistable and loaded.enumerable

    def test_manifest_shape(self):
        buffer = io.StringIO()
        save_index(CompositeEngine.build(graph()), buffer)
        document = json.loads(buffer.getvalue())
        assert document["version"] == 3
        assert document["kind"] == "composite"
        assert document["sub_engine"] == "chain-stratified"
        assert len(document["partitions"]) == 4
        for payload in document["partitions"]:
            assert payload["version"] == 4
            assert payload["codec"] == "packed"
            assert "labeling_crc32" in payload

    def test_partition_corruption_fails_the_load(self):
        buffer = io.StringIO()
        save_index(CompositeEngine.build(graph()), buffer)
        document = json.loads(buffer.getvalue())
        document["partitions"][2]["labeling"]["chain_of"][0] += 1
        with pytest.raises(IndexFormatError, match="partition 2"):
            load_index(io.StringIO(json.dumps(document)))

    def test_duplicated_node_across_partitions_rejected(self):
        buffer = io.StringIO()
        save_index(CompositeEngine.build(graph()), buffer)
        document = json.loads(buffer.getvalue())
        document["partitions"].append(document["partitions"][0])
        with pytest.raises(GraphFormatError, match="appears in"):
            load_index(io.StringIO(json.dumps(document)))

    def test_non_chain_composite_refuses_to_save(self):
        composite = CompositeEngine.build(graph(), engine="bfs")
        with pytest.raises(GraphFormatError, match="chain"):
            save_index(composite, io.StringIO())

    def test_saving_through_the_engine_registry_spec(self):
        spec = engine.get("composite")
        assert spec.persistable
        built = spec.build(graph())
        buffer = io.StringIO()
        save_index(built, buffer)
        buffer.seek(0)
        assert isinstance(load_index(buffer), CompositeEngine)
