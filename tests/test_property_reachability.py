"""Cross-cutting property tests on reachability semantics.

These check the *relational algebra* of reachability — reflexivity,
antisymmetry on DAGs, transitivity, monotonicity under edge insertion —
uniformly across every index implementation, on hypothesis-generated
graphs; plus the batch-engine equivalences: ``is_reachable_many`` must
agree with per-pair ``is_reachable`` and with BFS ground truth on both
its fast path (dense int labels) and its generic fallback, and a
persisted packed index must answer identically after reload.
"""

import io

from hypothesis import given, settings

from repro.baselines.dual import DualLabelingIndex
from repro.baselines.jagadish import JagadishIndex
from repro.baselines.tree_encoding import TreeEncodingIndex
from repro.baselines.two_hop import TwoHopIndex
from repro.baselines.warren import WarrenIndex
from repro.core.index import ChainIndex
from repro.core.maintenance import DynamicChainIndex
from repro.core.persistence import load_index, save_index
from repro.graph.digraph import DiGraph

from tests.conftest import all_pairs_oracle, small_dags, small_digraphs

DAG_INDEXES = [ChainIndex.build, JagadishIndex.build,
               TreeEncodingIndex.build, TwoHopIndex.build,
               DualLabelingIndex.build, WarrenIndex.build]


@settings(max_examples=60, deadline=None)
@given(small_dags(max_nodes=10))
def test_every_index_equals_the_oracle(g):
    oracle = all_pairs_oracle(g)
    indexes = [build(g) for build in DAG_INDEXES]
    for (u, v), expected in oracle.items():
        for index in indexes:
            assert index.is_reachable(u, v) == expected, (
                type(index).__name__, u, v)


@settings(max_examples=80)
@given(small_dags(min_nodes=1))
def test_reflexivity(g):
    index = ChainIndex.build(g)
    for v in g.nodes():
        assert index.is_reachable(v, v)


@settings(max_examples=80)
@given(small_dags())
def test_antisymmetry_on_dags(g):
    index = ChainIndex.build(g)
    nodes = g.nodes()
    for u in nodes:
        for v in nodes:
            if u != v and index.is_reachable(u, v):
                assert not index.is_reachable(v, u)


@settings(max_examples=50)
@given(small_dags(max_nodes=9))
def test_transitivity(g):
    index = ChainIndex.build(g)
    nodes = g.nodes()
    for u in nodes:
        mid = [v for v in nodes if index.is_reachable(u, v)]
        for v in mid:
            for w in nodes:
                if index.is_reachable(v, w):
                    assert index.is_reachable(u, w)


@settings(max_examples=50, deadline=None)
@given(small_dags(max_nodes=9))
def test_monotone_under_edge_insertion(g):
    """Inserting any (acyclicity-preserving) edge never loses a pair."""
    dynamic = DynamicChainIndex.from_graph(g)
    nodes = g.nodes()
    before = {(u, v) for u in nodes for v in nodes
              if dynamic.is_reachable(u, v)}
    inserted = False
    for u in nodes:
        for v in nodes:
            if u != v and not g.has_edge(u, v) \
                    and not dynamic.is_reachable(v, u):
                dynamic.add_edge(u, v)
                inserted = True
                break
        if inserted:
            break
    after = {(u, v) for u in nodes for v in nodes
             if dynamic.is_reachable(u, v)}
    assert before <= after


@settings(max_examples=60, deadline=None)
@given(small_dags(max_nodes=10))
def test_batch_equals_scalar_equals_bfs_on_dags(g):
    """Dense int labels: the batch kernel path vs scalar vs BFS."""
    index = ChainIndex.build(g)
    oracle = all_pairs_oracle(g)
    pairs = list(oracle)
    answers = index.is_reachable_many(pairs)
    for (u, v), answer in zip(pairs, answers):
        assert answer == oracle[(u, v)], (u, v)
        assert answer == index.is_reachable(u, v), (u, v)


@settings(max_examples=60, deadline=None)
@given(small_digraphs(max_nodes=9))
def test_batch_equals_scalar_equals_bfs_on_digraphs(g):
    """Cycles: SCC condensation must not confuse the pre-filters."""
    index = ChainIndex.build(g)
    oracle = all_pairs_oracle(g)
    pairs = list(oracle)
    answers = index.is_reachable_many(pairs)
    for (u, v), answer in zip(pairs, answers):
        assert answer == oracle[(u, v)], (u, v)
        assert answer == index.is_reachable(u, v), (u, v)


@settings(max_examples=40, deadline=None)
@given(small_dags(max_nodes=9))
def test_batch_generic_fallback_on_string_labels(g):
    """Non-int labels take the dict-translated batch path."""
    relabeled = DiGraph()
    for v in g.nodes():
        relabeled.add_node(f"n{v}")
    for u, v in g.edges():
        relabeled.add_edge(f"n{u}", f"n{v}")
    index = ChainIndex.build(relabeled)
    oracle = all_pairs_oracle(relabeled)
    pairs = list(oracle)
    answers = index.is_reachable_many(pairs)
    assert answers == [oracle[pair] for pair in pairs]


@settings(max_examples=40, deadline=None)
@given(small_digraphs(max_nodes=9))
def test_persisted_packed_index_answers_identically(g):
    """A saved+reloaded packed index gives the same batch answers."""
    index = ChainIndex.build(g)
    buffer = io.StringIO()
    save_index(index, buffer)
    buffer.seek(0)
    loaded = load_index(buffer)
    oracle = all_pairs_oracle(g)
    pairs = list(oracle)
    assert (loaded.is_reachable_many(pairs)
            == index.is_reachable_many(pairs)
            == [oracle[pair] for pair in pairs])


@settings(max_examples=60)
@given(small_digraphs(max_nodes=9))
def test_scc_members_are_reachability_equivalent(g):
    """Every pair inside one SCC answers identically against every
    third node — the justification for condensation (Section II)."""
    from repro.graph.scc import strongly_connected_components
    index = ChainIndex.build(g)
    for component in strongly_connected_components(g):
        if len(component) < 2:
            continue
        first = component[0]
        for other in component[1:]:
            for w in g.nodes():
                assert (index.is_reachable(first, w)
                        == index.is_reachable(other, w))
                assert (index.is_reachable(w, first)
                        == index.is_reachable(w, other))
