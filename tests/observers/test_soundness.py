"""Soundness: an observer's non-``None`` answer is never wrong.

The contract every observer must honour (``repro.observers.interface``):
``query(u, v)`` may pass with ``None``, but a ``True``/``False`` is a
*certificate* — checked here against a DFS oracle on random DAGs, for
every registered observer, prepared both from a bare condensation DAG
and from a built :class:`~repro.core.index.ChainIndex` (the table-reuse
path).
"""

from hypothesis import given, settings

import repro.observers as observers
from repro.core.index import ChainIndex
from repro.graph.scc import condense

from tests.conftest import small_dags, small_digraphs


def dag_reachability(dag) -> list[set[int]]:
    """Reflexive reachable-set per node id, by DFS."""
    adjacency = dag.adjacency()
    reach = []
    for start in range(dag.num_nodes):
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in adjacency[node]:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        reach.append(seen)
    return reach


def assert_sound(observer, spec, dag) -> None:
    reach = dag_reachability(dag)
    for u in range(dag.num_nodes):
        for v in range(dag.num_nodes):
            if u == v:
                continue
            answer = observer.query(u, v)
            if answer is None:
                continue
            truth = v in reach[u]
            assert answer == truth, \
                f"{spec.name} answered {answer} for {u}->{v}"
            if spec.answers == "negative":
                assert answer is False, \
                    f"{spec.name} claims negatives only"


@given(graph=small_dags(max_nodes=12))
@settings(max_examples=40, deadline=None)
def test_every_observer_is_sound_on_dags(graph):
    dag = condense(graph).dag
    for spec in observers.specs():
        observer = spec.factory()
        observer.prepare(dag)
        assert_sound(observer, spec, dag)


@given(graph=small_digraphs(max_nodes=9))
@settings(max_examples=25, deadline=None)
def test_every_observer_is_sound_prepared_from_a_chain_index(graph):
    """The table-reuse path: rank/level come from the built labeling."""
    index = ChainIndex.build(graph)
    dag = index._condensation.dag  # noqa: SLF001 — the id space queried
    for spec in observers.specs():
        observer = spec.factory()
        observer.prepare(index)
        assert_sound(observer, spec, dag)


def test_registry_exposes_four_observers_in_chain_order():
    names = observers.observer_names()
    assert names == ("topo-interval", "level-bound",
                     "supporting-points", "multi-dfs")
    stack = observers.default_observers()
    assert [observer.name for observer in stack] == list(names)
    for observer, spec in zip(stack, observers.specs()):
        assert observer.answers == spec.answers
