"""``ObserverChain``: same answers as the bare engine, plus counters.

The load-bearing equivalence — ``observed:<engine> ≡ <engine> ≡ BFS``
for every registered engine — followed by the chain's metric contract
(hits + misses account for every query; the lifted rank/level
pre-filter keeps feeding ``query/prefilter_hits``), error forwarding,
writable re-preparation, and the generic (non-fused) label path.
"""

import pytest
from hypothesis import given, settings

import repro.engine as engine
from repro.core.index import ChainIndex
from repro.engine.adapters import ChainEngine
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.graph.topology import check_dag
from repro.obs import OBS
from repro.observers import ObserverChain, observer_names

from tests.conftest import (PAPER_FIG1_EDGES, bfs_reachable, small_dags,
                            small_digraphs)


def all_pairs(graph: DiGraph) -> list[tuple]:
    nodes = graph.nodes()
    return [(u, v) for u in nodes for v in nodes]


# ----------------------------------------------------------------------
# equivalence: observed:<engine> ≡ engine ≡ BFS
# ----------------------------------------------------------------------
@given(graph=small_digraphs(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_every_observed_engine_equals_bfs(graph):
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    for name in engine.names():
        if name in ("dynamic", "dynamic-tol"):
            continue                     # DAG-only, covered below
        observed = engine.build(f"observed:{name}", graph)
        assert observed.is_reachable_many(pairs) == oracle, name
        assert [observed.is_reachable(u, v)
                for u, v in pairs] == oracle, name


@given(graph=small_dags(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_observed_dynamic_engine_tracks_writes(graph):
    """Writes dirty the observer tables; the next query re-prepares."""
    observed = engine.build("observed:dynamic", graph)
    n = graph.num_nodes
    observed.add_node(n)
    if n:
        observed.add_edge(0, n)          # forward edge keeps it a DAG
    expected = DiGraph.from_edges(graph.edges(),
                                  nodes=list(graph.nodes()) + [n])
    if n:
        expected.add_edge(0, n)
    pairs = all_pairs(expected)
    oracle = [bfs_reachable(expected, u, v) for u, v in pairs]
    assert observed.is_reachable_many(pairs) == oracle
    assert [observed.is_reachable(u, v) for u, v in pairs] == oracle


@given(graph=small_dags(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_observed_deletable_engine_tracks_removals(graph):
    """Removals must dirty the observer tables too — without the mark
    the ``__getattr__`` forwarding would delegate ``remove_edge`` to
    the inner engine and keep answering from stale positive
    certificates."""
    observed = engine.build("observed:dynamic-tol", graph)
    assert observed.deletable
    edges = list(graph.edges())
    expected = DiGraph.from_edges(edges, nodes=graph.nodes())
    observed.is_reachable_many(all_pairs(graph))  # warm the tables
    if edges:
        tail, head = edges[0]
        observed.remove_edge(tail, head)
        expected.remove_edge(tail, head)
    if expected.num_nodes:
        victim = expected.nodes()[-1]
        observed.remove_node(victim)
        expected.remove_node(victim)
    pairs = all_pairs(expected)
    oracle = [bfs_reachable(expected, u, v) for u, v in pairs]
    assert observed.is_reachable_many(pairs) == oracle
    assert [observed.is_reachable(u, v) for u, v in pairs] == oracle


@given(graph=small_digraphs(max_nodes=8))
@settings(max_examples=30, deadline=None)
def test_generic_path_with_string_labels_equals_bfs(graph):
    """Non-int labels skip the fused loop; answers must not change."""
    relabeled = DiGraph()
    for node in graph.nodes():
        relabeled.add_node(f"n{node}")
    for tail, head in graph.edges():
        relabeled.add_edge(f"n{tail}", f"n{head}")
    pairs = all_pairs(relabeled)
    oracle = [bfs_reachable(relabeled, u, v) for u, v in pairs]
    observed = engine.build("observed:chain-stratified", relabeled)
    if relabeled.num_nodes:              # empty tables are trivially dense
        assert observed._build_fused_tables() is None  # noqa: SLF001
    assert observed.is_reachable_many(pairs) == oracle
    assert [observed.is_reachable(u, v) for u, v in pairs] == oracle


@given(graph=small_digraphs(max_nodes=7))
@settings(max_examples=15, deadline=None)
def test_custom_observer_subset_still_answers_correctly(graph):
    """A hand-picked stack (out of fused order) takes the generic
    path and stays equivalent."""
    from repro.observers import specs
    subset = [spec.factory() for spec in reversed(specs())]
    inner = ChainEngine(ChainIndex.build(graph), "chain-stratified")
    chain = ObserverChain.wrap(graph, inner, observers=subset)
    assert chain._build_fused_tables() is None  # noqa: SLF001
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    assert chain.is_reachable_many(pairs) == oracle


# ----------------------------------------------------------------------
# fixtures for the deterministic tests
# ----------------------------------------------------------------------
@pytest.fixture
def fig1_graph() -> DiGraph:
    return DiGraph.from_edges(PAPER_FIG1_EDGES)


@pytest.fixture
def dense_fig1() -> DiGraph:
    """Fig. 1(a) relabeled to dense ints so the fused path applies."""
    source = DiGraph.from_edges(PAPER_FIG1_EDGES)
    ids = {node: i for i, node in enumerate(sorted(source.nodes()))}
    graph = DiGraph()
    for node in source.nodes():
        graph.add_node(ids[node])
    for tail, head in source.edges():
        graph.add_edge(ids[tail], ids[head])
    return graph


# ----------------------------------------------------------------------
# metric contract
# ----------------------------------------------------------------------
class TestCounters:
    def test_batch_hits_and_misses_account_for_every_query(
            self, dense_fig1):
        observed = engine.build("observed:chain-stratified",
                                dense_fig1)
        pairs = all_pairs(dense_fig1)
        with OBS.capture() as metrics:
            observed.is_reachable_many(pairs)
        hits = sum(value for name, value in metrics.counters.items()
                   if name.startswith("observers/hit/"))
        misses = metrics.counters.get("observers/miss", 0)
        assert hits + misses == len(pairs)
        # every hit name is a registered observer or the chain's own
        # reflexive bucket
        allowed = set(observer_names()) | {"reflexive"}
        for name in metrics.counters:
            if name.startswith("observers/hit/"):
                assert name.removeprefix("observers/hit/") in allowed
        # over a chain inner, observer answers + inline probes cover
        # the whole batch, so the dashboard total matches the bare run
        assert metrics.counters["query/answered"] == len(pairs)
        ratio = metrics.gauges["observers/o1_answer_ratio"]
        assert 0.0 <= ratio <= 1.0
        assert ratio == pytest.approx(hits / len(pairs))

    def test_prefilter_alias_counts_topo_and_level_hits(
            self, dense_fig1):
        observed = engine.build("observed:chain-stratified",
                                dense_fig1)
        pairs = all_pairs(dense_fig1)
        with OBS.capture() as metrics:
            observed.is_reachable_many(pairs)
        lifted = (metrics.counters.get("observers/hit/topo-interval", 0)
                  + metrics.counters.get("observers/hit/level-bound", 0))
        assert lifted > 0
        assert metrics.counters["query/prefilter_hits"] == lifted

    def test_scalar_path_publishes_the_same_totals(self, dense_fig1):
        observed = engine.build("observed:chain-stratified",
                                dense_fig1)
        pairs = all_pairs(dense_fig1)
        with OBS.capture() as batch_metrics:
            observed.is_reachable_many(pairs)
        with OBS.capture() as scalar_metrics:
            for u, v in pairs:
                observed.is_reachable(u, v)
        batch = {name: value
                 for name, value in batch_metrics.counters.items()
                 if name.startswith(("observers/", "query/"))}
        scalar = {name: value
                  for name, value in scalar_metrics.counters.items()
                  if name.startswith(("observers/", "query/"))}
        assert scalar == batch

    def test_observed_bfs_misses_count_the_fallthroughs(
            self, dense_fig1):
        """No inner index to inline: residuals show up as misses and
        the gauge excludes them."""
        observed = engine.build("observed:bfs", dense_fig1)
        pairs = all_pairs(dense_fig1)
        with OBS.capture() as metrics:
            answers = observed.is_reachable_many(pairs)
        assert answers == [bfs_reachable(dense_fig1, u, v)
                           for u, v in pairs]
        hits = sum(value for name, value in metrics.counters.items()
                   if name.startswith("observers/hit/"))
        misses = metrics.counters.get("observers/miss", 0)
        assert hits + misses == len(pairs)
        assert "query/probes" not in metrics.counters
        ratio = metrics.gauges["observers/o1_answer_ratio"]
        assert ratio == pytest.approx(hits / len(pairs))

    def test_prepare_spans_cover_every_observer(self, dense_fig1):
        with OBS.capture() as metrics:
            engine.build("observed:chain-stratified", dense_fig1)
        for name in observer_names():
            # prepare runs inside the engine/build span, so the path
            # is nested under it
            assert any(span.endswith(f"observers/prepare/{name}")
                       for span in metrics.spans), name


# ----------------------------------------------------------------------
# error forwarding and introspection
# ----------------------------------------------------------------------
class TestForwarding:
    def test_unknown_node_raises_through_the_chain(self, fig1_graph):
        observed = engine.build("observed:chain-stratified",
                                fig1_graph)
        with pytest.raises(NodeNotFoundError):
            observed.is_reachable("a", "nope")
        with pytest.raises(NodeNotFoundError):
            observed.is_reachable("nope", "a")
        with pytest.raises(NodeNotFoundError):
            observed.is_reachable_many([("a", "b"), ("a", "nope")])

    def test_unknown_dense_label_raises_through_the_chain(
            self, dense_fig1):
        observed = engine.build("observed:chain-stratified",
                                dense_fig1)
        for bad_pair in [(0, 99), (99, 0), (-1, 0), (0, -1)]:
            with pytest.raises(NodeNotFoundError):
                observed.is_reachable_many([bad_pair])

    def test_describe_reports_the_stack(self, fig1_graph):
        observed = engine.build("observed:chain-stratified",
                                fig1_graph)
        payload = observed.describe()
        assert payload["engine"] == "observed:chain-stratified"
        assert payload["inner"] == "chain-stratified"
        assert payload["observers"] == list(observer_names())
        assert payload["size_words"] >= observed.inner.size_words()

    def test_inner_attributes_stay_reachable(self, fig1_graph):
        observed = engine.build("observed:chain-stratified",
                                fig1_graph)
        # the PR 2 pre-filter statistic lives on the inner index and
        # must stay addressable through the wrapper
        assert observed.index is observed.inner.index
        assert observed.prefilter_rejects("d", "a") is True
        assert set(observed.descendants("a")) == {"a", "b", "c", "d",
                                                  "e", "i"}

    def test_capability_flags_mirror_the_inner_engine(self, fig1_graph):
        check_dag(fig1_graph)            # Fig. 1(a): "dynamic" applies
        for name in ("chain-stratified", "bfs", "dynamic",
                     "dynamic-tol"):
            bare = engine.build(name, fig1_graph)
            observed = engine.build(f"observed:{name}", fig1_graph)
            for flag in ("supports_batch", "writable", "persistable",
                         "enumerable", "deletable"):
                assert getattr(observed, flag) == getattr(bare, flag), \
                    (name, flag)
