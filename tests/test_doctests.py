"""Docstring examples in the public modules must actually run."""

import doctest

import pytest

import repro.core.index
import repro.core.maintenance
import repro.engine.composite
import repro.engine.registry
import repro.graph.components
import repro.graph.digraph

MODULES = [repro.graph.digraph, repro.core.index,
           repro.core.maintenance, repro.graph.components,
           repro.engine.registry, repro.engine.composite]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples exist and ran
