"""Unit tests for :class:`repro.dynamic.tol.TolIndex`.

The fully dynamic 2-hop index: build equivalence against the BFS
oracle, insert propagation, the two deletion paths (fast path when an
alternate route survives, purge-and-repair when it does not), hub
retirement on node removal, error contracts, and the maintenance
metrics it publishes.
"""

import pytest
from hypothesis import given, settings

from repro.dynamic import TolIndex
from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    NodeNotFoundError,
    NotADAGError,
)
from repro.obs import OBS

from tests.conftest import PAPER_FIG1_EDGES, bfs_reachable, small_dags


def all_pairs(graph: DiGraph) -> list[tuple]:
    nodes = graph.nodes()
    return [(u, v) for u in nodes for v in nodes]


def assert_equals_oracle(index: TolIndex, graph: DiGraph) -> None:
    pairs = all_pairs(graph)
    oracle = [bfs_reachable(graph, u, v) for u, v in pairs]
    assert index.is_reachable_many(pairs) == oracle
    assert [index.is_reachable(u, v) for u, v in pairs] == oracle


class TestBuild:
    def test_fig1_dag_matches_bfs(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = TolIndex.from_graph(graph)
        assert_equals_oracle(index, graph)

    def test_reflexive_on_isolated_node(self):
        graph = DiGraph()
        graph.add_node("only")
        index = TolIndex.from_graph(graph)
        assert index.is_reachable("only", "only")

    def test_empty_graph(self):
        index = TolIndex.from_graph(DiGraph())
        assert index.num_nodes == 0
        assert index.label_entries() == 0
        assert index.is_reachable_many([]) == []

    def test_cyclic_input_is_rejected(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            TolIndex.from_graph(graph)

    def test_the_source_graph_is_copied(self):
        graph = DiGraph.from_edges([("a", "b")])
        index = TolIndex.from_graph(graph)
        graph.remove_edge("a", "b")
        assert index.is_reachable("a", "b")
        assert index.graph is not graph

    @given(graph=small_dags())
    @settings(max_examples=40, deadline=None)
    def test_random_dags_match_bfs(self, graph):
        assert_equals_oracle(TolIndex.from_graph(graph), graph)

    @given(graph=small_dags())
    @settings(max_examples=20, deadline=None)
    def test_entry_rank_never_exceeds_owner_rank(self, graph):
        """The pruned landmark BFS only labels down the priority
        order: every stored entry's hub outranks its owner."""
        index = TolIndex.from_graph(graph)
        for node in graph.nodes():
            r = index._rank[node]  # noqa: SLF001
            assert all(h <= r for h in index._lin[node])  # noqa: SLF001
            assert all(h <= r for h in index._lout[node])  # noqa: SLF001


class TestInsert:
    def test_add_edge_extends_reachability(self):
        graph = DiGraph.from_edges([("a", "b"), ("c", "d")])
        index = TolIndex.from_graph(graph)
        assert not index.is_reachable("a", "d")
        index.add_edge("b", "c")
        assert index.is_reachable("a", "d")
        assert_equals_oracle(index, index.graph)

    def test_cycle_closing_edge_rejected_before_mutation(self):
        index = TolIndex.from_graph(
            DiGraph.from_edges([("a", "b"), ("b", "c")]))
        before = index.label_entries()
        with pytest.raises(NotADAGError):
            index.add_edge("c", "a")
        assert not index.graph.has_edge("c", "a")
        assert index.label_entries() == before
        assert index.is_reachable("a", "c")

    def test_duplicate_edge_raises(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        with pytest.raises(EdgeExistsError):
            index.add_edge("a", "b")

    def test_unknown_endpoint_raises_before_mutation(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        with pytest.raises(NodeNotFoundError):
            index.add_edge("a", "nope")
        assert index.graph.num_edges == 1

    def test_self_loop_is_a_noop(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        index.add_edge("a", "a")
        assert index.graph.num_edges == 1

    def test_add_node_then_wire_it_in(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        index.add_node("c")
        assert index.is_reachable("c", "c")
        assert not index.is_reachable("a", "c")
        index.add_edge("b", "c")
        assert index.is_reachable("a", "c")

    def test_new_nodes_take_fresh_ranks(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        ranks = set(index._rank.values())  # noqa: SLF001
        index.add_node("c")
        assert index._rank["c"] not in ranks  # noqa: SLF001


class TestRemoveEdge:
    def test_fast_path_keeps_answers_when_a_route_survives(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        index = TolIndex.from_graph(graph)
        index.remove_edge("a", "c")          # a ⇝ c still via b
        assert index.is_reachable("a", "c")
        assert_equals_oracle(index, index.graph)

    def test_repair_path_forgets_dead_pairs(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = TolIndex.from_graph(graph)
        assert index.is_reachable("f", "e")
        index.remove_edge("c", "e")
        index.remove_edge("h", "e")
        assert not index.is_reachable("f", "e")
        assert_equals_oracle(index, index.graph)

    def test_reverse_edge_insertable_after_removal(self):
        """The repaired labels must not remember the dead direction —
        a stale certificate would falsely reject the reverse edge as a
        cycle."""
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        index.remove_edge("a", "b")
        index.add_edge("b", "a")
        assert index.is_reachable("b", "a")
        assert not index.is_reachable("a", "b")

    def test_missing_edge_raises(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        with pytest.raises(EdgeNotFoundError):
            index.remove_edge("b", "a")
        with pytest.raises(NodeNotFoundError):
            index.remove_edge("a", "zzz")


class TestRemoveNode:
    def test_hub_retirement(self):
        """Removing a high-degree node retires its rank everywhere."""
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = TolIndex.from_graph(graph)
        index.remove_node("c")               # the Fig. 1 cut vertex
        assert not index.is_reachable("a", "d")
        assert index.is_reachable("f", "d")  # via g
        with pytest.raises(NodeNotFoundError):
            index.is_reachable("c", "d")
        assert_equals_oracle(index, index.graph)

    def test_removed_rank_is_a_permanent_hole(self):
        index = TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        retired = index._rank["b"]  # noqa: SLF001
        index.remove_node("b")
        index.add_node("c")
        assert index._rank["c"] != retired  # noqa: SLF001
        for labels in index._lin.values():  # noqa: SLF001
            assert retired not in labels
        for labels in index._lout.values():  # noqa: SLF001
            assert retired not in labels

    def test_source_or_sink_removal_skips_repair(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c")])
        index = TolIndex.from_graph(graph)
        index.remove_node("a")               # pure source
        assert index.is_reachable("b", "c")
        index.remove_node("c")               # pure sink
        assert index.is_reachable("b", "b")

    def test_unknown_node_raises_with_role(self):
        index = TolIndex.from_graph(DiGraph())
        with pytest.raises(NodeNotFoundError) as info:
            index.remove_node("nope")
        assert info.value.role == "node"


class TestMaintenanceCompaction:
    def test_rebuild_compacts_without_changing_answers(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = TolIndex.from_graph(graph)
        for tail, head in [("c", "d"), ("g", "d")]:
            index.remove_edge(tail, head)
            index.add_edge(tail, head)
        inflated = index.label_entries()
        pairs = all_pairs(index.graph)
        before = index.is_reachable_many(pairs)
        index.rebuild()
        assert index.is_reachable_many(pairs) == before
        assert index.label_entries() <= inflated

    def test_size_words_accounts_nodes_and_entries(self):
        index = TolIndex.from_graph(
            DiGraph.from_edges([("a", "b"), ("b", "c")]))
        assert index.size_words() == (2 * index.num_nodes
                                      + 2 * index.label_entries())


class TestMetrics:
    def test_removal_counters_and_gauge(self):
        graph = DiGraph.from_edges(PAPER_FIG1_EDGES)
        index = TolIndex.from_graph(graph)
        with OBS.capture() as metrics:
            index.remove_edge("c", "e")
            index.remove_node("h")
        assert metrics.counters["maintenance/edges_removed"] == 1
        assert metrics.counters["maintenance/nodes_removed"] == 1
        assert metrics.gauges["dynamic/label_entries"] == \
            index.label_entries()

    def test_insert_counters(self):
        index = TolIndex.from_graph(
            DiGraph.from_edges([("a", "b"), ("c", "d")]))
        with OBS.capture() as metrics:
            index.add_node("e")
            index.add_edge("b", "c")
        assert metrics.counters["maintenance/nodes_added"] == 1
        assert metrics.counters["maintenance/edges_added"] == 1
        assert metrics.counters["maintenance/label_updates"] >= 1

    def test_build_runs_inside_a_rebuild_span(self):
        with OBS.capture() as metrics:
            TolIndex.from_graph(DiGraph.from_edges([("a", "b")]))
        assert any(span.endswith("maintenance/rebuild")
                   for span in metrics.spans)
