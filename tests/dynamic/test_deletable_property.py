"""Property: every ``deletable`` engine survives interleaved mutation.

The acceptance bar for the dynamic subsystem: under a random
interleaving of edge/node inserts and deletes, every engine that
advertises the ``deletable`` capability — and its ``observed:``
wrapping — answers exactly like a BFS oracle over a model graph that
absorbed the same operations, after *every* step.  Plus the write-path
error contracts: read-only managers refuse the delete verbs with
:class:`WritesUnsupportedError`, and unknown operands surface
:class:`NodeNotFoundError` carrying the operand's role.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine as engine
from repro.graph.digraph import DiGraph
from repro.graph.errors import NodeNotFoundError
from repro.service import IndexManager
from repro.service.errors import WritesUnsupportedError

from tests.conftest import bfs_reachable, small_dags

OPS = ("add_node", "add_edge", "remove_edge", "remove_node")


def deletable_names() -> list[str]:
    return [spec.name for spec in engine.specs() if spec.deletable]


def test_dynamic_tol_is_registered_as_deletable():
    assert "dynamic-tol" in deletable_names()


def _apply(target, model: DiGraph, op, fresh: int) -> int:
    """Interpret one drawn op against both the engine and the model.

    Node labels are ints and every edge runs small-label → big-label,
    so any insert the interpreter picks keeps the graph a DAG.
    """
    kind, i, j = op
    if kind == "add_node":
        target.add_node(fresh)
        model.add_node(fresh)
        return fresh + 1
    if kind == "add_edge":
        nodes = sorted(model.nodes())
        if len(nodes) >= 2:
            a, b = nodes[i % len(nodes)], nodes[j % len(nodes)]
            if a != b:
                tail, head = min(a, b), max(a, b)
                if not model.has_edge(tail, head):
                    target.add_edge(tail, head)
                    model.add_edge(tail, head)
    elif kind == "remove_edge":
        edges = sorted(model.edges())
        if edges:
            tail, head = edges[i % len(edges)]
            target.remove_edge(tail, head)
            model.remove_edge(tail, head)
    elif kind == "remove_node":
        nodes = sorted(model.nodes())
        if nodes:
            victim = nodes[i % len(nodes)]
            target.remove_node(victim)
            model.remove_node(victim)
    return fresh


def _assert_oracle(target, model: DiGraph, context) -> None:
    nodes = model.nodes()
    pairs = [(u, v) for u in nodes for v in nodes]
    oracle = [bfs_reachable(model, u, v) for u, v in pairs]
    assert target.is_reachable_many(pairs) == oracle, context


@given(graph=small_dags(max_nodes=7),
       ops=st.lists(st.tuples(st.sampled_from(OPS),
                              st.integers(0, 2 ** 16),
                              st.integers(0, 2 ** 16)),
                    max_size=10))
@settings(max_examples=25, deadline=None)
def test_deletable_engines_equal_bfs_under_interleaved_ops(graph, ops):
    for name in deletable_names():
        for build_name in (name, f"observed:{name}"):
            built = engine.build(build_name, graph)
            model = DiGraph.from_edges(graph.edges(),
                                       nodes=graph.nodes())
            fresh = graph.num_nodes
            for step, op in enumerate(ops):
                fresh = _apply(built, model, op, fresh)
                _assert_oracle(built, model, (build_name, step, op))


@given(graph=small_dags(max_nodes=7, min_nodes=2),
       ops=st.lists(st.tuples(st.sampled_from(OPS),
                              st.integers(0, 2 ** 16),
                              st.integers(0, 2 ** 16)),
                    min_size=4, max_size=14))
@settings(max_examples=25, deadline=None)
def test_manager_shadow_absorbs_interleaved_ops(graph, ops):
    """The same interleavings through ``IndexManager`` — the shadow is
    the live ``dynamic-tol`` index, so every post-op answer is fresh
    without a swap."""
    manager = IndexManager.from_graph(graph, engine="dynamic-tol")
    try:
        model = DiGraph.from_edges(graph.edges(), nodes=graph.nodes())
        fresh = graph.num_nodes
        writes = 0
        for op in ops:
            before = model.num_nodes + model.num_edges
            fresh = _apply(manager, model, op, fresh)
            writes += (model.num_nodes + model.num_edges) != before
            nodes = model.nodes()
            pairs = [(u, v) for u in nodes for v in nodes]
            oracle = [bfs_reachable(model, u, v) for u, v in pairs]
            assert manager.query_many(pairs)[1] == oracle, op
        assert manager.pending_writes == writes
    finally:
        manager.close()


class TestWriteContracts:
    @pytest.fixture
    def read_only(self) -> IndexManager:
        cyclic = DiGraph.from_edges([("a", "b"), ("b", "a")])
        manager = IndexManager.from_graph(cyclic)
        yield manager
        manager.close()

    def test_read_only_manager_refuses_delete_verbs(self, read_only):
        assert not read_only.writable
        with pytest.raises(WritesUnsupportedError):
            read_only.remove_edge("a", "b")
        with pytest.raises(WritesUnsupportedError):
            read_only.remove_node("a")
        assert read_only.pending_writes == 0

    def test_unknown_operands_carry_roles(self):
        graph = DiGraph.from_edges([("a", "b")])
        manager = IndexManager.from_graph(graph, engine="dynamic-tol")
        try:
            with pytest.raises(NodeNotFoundError) as info:
                manager.remove_edge("nope", "b")
            assert info.value.role == "source"
            with pytest.raises(NodeNotFoundError) as info:
                manager.remove_edge("a", "nope")
            assert info.value.role == "target"
            with pytest.raises(NodeNotFoundError) as info:
                manager.remove_node("nope")
            assert info.value.role == "node"
        finally:
            manager.close()

    def test_remove_edge_mirrors_add_edge_idempotence(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c")])
        manager = IndexManager.from_graph(graph, engine="dynamic-tol")
        try:
            assert manager.remove_edge("a", "b") is True
            assert manager.remove_edge("a", "b") is False
            assert manager.remove_node("a") is True
        finally:
            manager.close()
