"""Unit tests for the ``python -m repro`` command line."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph.generators import semi_random_dag
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(semi_random_dag(60, 30, seed=1), path)
    return str(path)


def wait_ready(process, ready, timeout=30):
    """Block until the serve subprocess writes its JSON ready file;
    returns the parsed payload (host, port, epoch, workers, pids)."""
    deadline = time.monotonic() + timeout
    while not ready.exists() or not ready.read_text().strip():
        assert process.poll() is None, process.stderr.read().decode()
        assert time.monotonic() < deadline, "server never ready"
        time.sleep(0.05)
    return json.loads(ready.read_text())


class TestStats:
    def test_reports_width_and_sizes(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out and "width (Dilworth):" in out


class TestChains:
    def test_prints_every_chain(self, graph_file, capsys):
        assert main(["chains", graph_file]) == 0
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        chain_count = int(first_line.split()[0])
        assert len(out.splitlines()) == chain_count + 1

    def test_method_flag(self, graph_file, capsys):
        assert main(["chains", graph_file, "--method", "closure"]) == 0
        capsys.readouterr()


class TestAntichain:
    def test_antichain_size_matches_chain_count(self, graph_file,
                                                capsys):
        main(["chains", graph_file])
        chains = int(capsys.readouterr().out.split()[0])
        main(["antichain", graph_file])
        out = capsys.readouterr().out
        assert f"({chains} nodes)" in out


class TestQuery:
    def test_yes_and_no(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(
            semi_random_dag(10, 0, seed=2), path)
        assert main(["query", str(path), "0", "1"]) == 0
        assert "yes" in capsys.readouterr().out
        assert main(["query", str(path), "1", "0"]) == 1
        assert "no" in capsys.readouterr().out

    def test_odd_pair_count_is_an_error(self, graph_file, capsys):
        assert main(["query", graph_file, "0"]) == 2
        capsys.readouterr()

    def test_pairs_file_batch(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(10, 0, seed=2), path)
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("# one pair per line (or any whitespace)\n"
                         "0 1\n1 0\n", encoding="utf-8")
        assert main(["query", str(path),
                     "--pairs-file", str(pairs)]) == 1
        out = capsys.readouterr().out
        assert "0 -> 1: yes" in out
        assert "1 -> 0: no" in out

    def test_pairs_file_combines_with_positional(self, tmp_path,
                                                  capsys):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(10, 0, seed=2), path)
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n", encoding="utf-8")
        assert main(["query", str(path), "0", "1",
                     "--pairs-file", str(pairs)]) == 0
        assert capsys.readouterr().out.count("yes") == 2

    def test_missing_pairs_file_is_an_error(self, graph_file, capsys):
        assert main(["query", graph_file,
                     "--pairs-file", "does-not-exist.txt"]) == 2
        assert "cannot read pairs file" in capsys.readouterr().err

    def test_no_pairs_at_all_is_an_error(self, graph_file, capsys):
        assert main(["query", graph_file]) == 2
        assert "at least one" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["two-hop", "composite",
                                        "chain-jagadish"])
    def test_engine_flag_answers_like_the_default(self, tmp_path,
                                                  capsys, engine):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(10, 0, seed=2), path)
        assert main(["query", str(path), "0", "1",
                     "--engine", engine]) == 0
        assert "yes" in capsys.readouterr().out

    def test_engine_flag_conflicts_with_remote_and_index(
            self, graph_file, tmp_path, capsys):
        assert main(["query", "--remote", "127.0.0.1:1", "0", "1",
                     "--engine", "bfs"]) == 2
        assert "--engine" in capsys.readouterr().err
        index_path = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(index_path)]) == 0
        capsys.readouterr()
        assert main(["query", "--index", str(index_path), "0", "1",
                     "--engine", "bfs"]) == 2
        assert "--engine" in capsys.readouterr().err

    def test_unknown_engine_is_an_argparse_error(self, graph_file,
                                                 capsys):
        with pytest.raises(SystemExit):
            main(["query", graph_file, "0", "1", "--engine", "nope"])
        assert "invalid choice" in capsys.readouterr().err


class TestObserversFlag:
    def test_query_with_observers_answers_the_same(self, tmp_path,
                                                   capsys):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(10, 0, seed=2), path)
        assert main(["query", str(path), "0", "1",
                     "--observers", "on"]) == 0
        assert "yes" in capsys.readouterr().out
        assert main(["query", str(path), "1", "0",
                     "--observers", "on"]) == 1
        assert "no" in capsys.readouterr().out

    def test_query_observers_combine_with_engine_flag(self, tmp_path,
                                                      capsys):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(10, 0, seed=2), path)
        assert main(["query", str(path), "0", "1", "--engine", "bfs",
                     "--observers", "on"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_stats_reports_the_observer_stack(self, graph_file,
                                              capsys):
        assert main(["stats", graph_file, "--observers", "on"]) == 0
        out = capsys.readouterr().out
        assert "engine:              observed:chain-stratified" in out
        assert "engine observers:" in out
        assert "topo-interval" in out

    def test_observers_conflict_with_remote(self, capsys):
        assert main(["query", "--remote", "127.0.0.1:1", "0", "1",
                     "--observers", "on"]) == 2
        assert "--observers" in capsys.readouterr().err

    def test_observers_over_a_persisted_chain_index(self, graph_file,
                                                    tmp_path, capsys):
        index_path = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(index_path)]) == 0
        capsys.readouterr()
        assert main(["query", "--index", str(index_path), "0", "1",
                     "--observers", "on"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_observers_reject_non_chain_persisted_index(
            self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(20, 5, seed=4), path)
        index_path = tmp_path / "composite.idx"
        assert main(["index", str(path), "-o", str(index_path),
                     "--engine", "composite"]) == 0
        capsys.readouterr()
        assert main(["query", "--index", str(index_path), "0", "1",
                     "--observers", "on"]) == 2
        assert "--observers" in capsys.readouterr().err

    def test_serve_observers_conflict_with_index(self, graph_file,
                                                 tmp_path, capsys):
        index_path = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(index_path)]) == 0
        capsys.readouterr()
        assert main(["serve", "--index", str(index_path),
                     "--observers", "on"]) == 2
        assert "--observers" in capsys.readouterr().err

    def test_serve_observers_subprocess_end_to_end(self, graph_file,
                                                   tmp_path, capsys):
        """``repro serve --observers on`` answers remote queries
        through the observed engine."""
        ready = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_file,
             "--observers", "on", "--port", "0",
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            info = wait_ready(process, ready)
            host, port = info["host"], info["port"]
            assert main(["query", "--remote", f"{host}:{port}",
                         "0", "1"]) == 0
            assert "yes" in capsys.readouterr().out
        finally:
            process.send_signal(signal.SIGINT)
            try:
                stdout, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                stdout, _ = process.communicate()
        assert b"engine observed:chain-stratified" in stdout


class TestIndexPersistence:
    def test_index_then_query(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(index_path)]) == 0
        assert "indexed" in capsys.readouterr().out
        assert main(["query", "--index", str(index_path), "0", "1"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_query_without_source_errors(self, capsys):
        assert main(["query", "0", "1"]) == 2
        assert "no such graph file" in capsys.readouterr().err

    def test_index_method_flag(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "c.idx"
        assert main(["index", graph_file, "-o", str(index_path),
                     "--method", "closure"]) == 0
        capsys.readouterr()

    def test_index_engine_composite_writes_v3_and_queries(
            self, tmp_path, capsys):
        import json
        path = tmp_path / "g.txt"
        write_edge_list(semi_random_dag(20, 5, seed=4), path)
        index_path = tmp_path / "composite.idx"
        assert main(["index", str(path), "-o", str(index_path),
                     "--engine", "composite"]) == 0
        assert "composite" in capsys.readouterr().out
        assert json.loads(index_path.read_text())["version"] == 3
        assert main(["query", "--index", str(index_path),
                     "0", "1"]) in (0, 1)
        capsys.readouterr()

    def test_index_rejects_non_persistable_engines(self, graph_file,
                                                   tmp_path, capsys):
        assert main(["index", graph_file, "-o",
                     str(tmp_path / "x.idx"), "--engine", "bfs"]) == 2
        assert "not persistable" in capsys.readouterr().err

    def test_stats_engine_flag_reports_capabilities(self, graph_file,
                                                    capsys):
        assert main(["stats", graph_file,
                     "--engine", "composite"]) == 0
        out = capsys.readouterr().out
        assert "engine:              composite" in out
        assert "engine capabilities:" in out
        assert "engine partitions:" in out


class TestDot:
    def test_plain_dot_to_stdout(self, graph_file, capsys):
        assert main(["dot", graph_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_chains_dot_to_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "chains.dot"
        assert main(["dot", graph_file, "--chains", "--out",
                     str(out)]) == 0
        capsys.readouterr()
        assert "penwidth=2.5" in out.read_text()

    def test_strata_dot(self, graph_file, capsys):
        assert main(["dot", graph_file, "--strata"]) == 0
        assert "rank=same" in capsys.readouterr().out


class TestRemove:
    @pytest.fixture
    def chain_file(self, tmp_path):
        from repro.graph.digraph import DiGraph
        path = tmp_path / "chain.txt"
        write_edge_list(DiGraph.from_edges([(0, 1), (1, 2), (2, 3)]),
                        path)
        return str(path)

    def test_remove_edge_rewrites_the_file(self, chain_file, tmp_path,
                                           capsys):
        from repro.graph.io import read_edge_list
        out = tmp_path / "pruned.txt"
        assert main(["remove-edge", chain_file, "1", "2",
                     "--out", str(out)]) == 0
        assert "removed edge 1 -> 2" in capsys.readouterr().out
        pruned = read_edge_list(out)
        assert not pruned.has_edge(1, 2)
        assert pruned.num_nodes == 4         # endpoints survive
        # without --out the rewrite is in place; removing an interior
        # node punches a hole in the dense label range, which the
        # writer must preserve (no resurrected node 1)
        assert main(["remove-node", chain_file, "1"]) == 0
        capsys.readouterr()
        rewritten = read_edge_list(chain_file)
        assert sorted(rewritten.nodes()) == [0, 2, 3]

    def test_missing_edge_or_node_exits_1(self, chain_file, capsys):
        assert main(["remove-edge", chain_file, "2", "1"]) == 1
        assert "not in the graph" in capsys.readouterr().err
        assert main(["remove-node", chain_file, "99"]) == 1
        capsys.readouterr()

    def test_no_graph_and_no_remote_is_a_usage_error(self, capsys):
        assert main(["remove-edge", "0", "1"]) == 2
        assert "--remote" in capsys.readouterr().err

    def test_remote_removal_round_trip(self, chain_file, capsys):
        from repro.graph.io import read_edge_list
        from repro.service import IndexManager, start_in_thread
        manager = IndexManager.from_graph(read_edge_list(chain_file),
                                          engine="dynamic-tol")
        with start_in_thread(manager, port=0) as handle:
            remote = "%s:%d" % handle.address
            assert main(["query", "--remote", remote, "0", "3"]) == 0
            capsys.readouterr()
            assert main(["remove-edge", "--remote", remote,
                         "1", "2"]) == 0
            assert "removed" in capsys.readouterr().out
            # gone already: the deletable engine repairs in place
            assert main(["query", "--remote", remote, "0", "3"]) == 1
            capsys.readouterr()
            # absent edge: reported, exit 1
            assert main(["remove-edge", "--remote", remote,
                         "1", "2"]) == 1
            assert "not present" in capsys.readouterr().out
            assert main(["remove-node", "--remote", remote, "3"]) == 0
            capsys.readouterr()
            # unknown node: same exit 1 as the file path, not the
            # exit-2 transport-error class
            assert main(["remove-node", "--remote", remote, "3"]) == 1
            assert "not in the graph" in capsys.readouterr().err


class TestRemoteQuery:
    @pytest.fixture
    def remote(self, graph_file):
        from repro.graph.io import read_edge_list
        from repro.service import IndexManager, start_in_thread
        manager = IndexManager.from_graph(read_edge_list(graph_file))
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            yield f"{host}:{port}"

    def test_remote_pairs(self, remote, capsys):
        exit_code = main(["query", "--remote", remote, "0", "1", "1", "0"])
        out = capsys.readouterr().out
        assert "0 -> 1: yes" in out
        assert "1 -> 0: no" in out
        assert "(epoch 0)" in out
        assert exit_code == 1                # at least one "no"

    def test_remote_with_pairs_file(self, remote, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n", encoding="utf-8")
        assert main(["query", "--remote", remote,
                     "--pairs-file", str(pairs)]) == 0
        assert "yes" in capsys.readouterr().out

    def test_unreachable_server_is_a_usage_error(self, capsys):
        assert main(["query", "--remote", "127.0.0.1:1",
                     "0", "1"]) == 2
        assert "remote" in capsys.readouterr().err

    def test_bad_address_is_a_usage_error(self, capsys):
        assert main(["query", "--remote", "nonsense", "0", "1"]) == 2
        capsys.readouterr()


class TestServe:
    def test_serve_without_source_is_a_usage_error(self, capsys):
        assert main(["serve"]) == 2
        assert "graph file or --index" in capsys.readouterr().err

    def test_serve_subprocess_end_to_end(self, graph_file, tmp_path,
                                         capsys):
        """``repro serve`` + ``repro query --remote`` over a real pipe."""
        ready = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_file,
             "--port", "0", "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            info = wait_ready(process, ready)
            host, port = info["host"], info["port"]
            assert info["workers"] == 0
            assert info["pids"] == [process.pid]
            assert info["epoch"] == 0
            assert main(["query", "--remote", f"{host}:{port}",
                         "0", "1"]) == 0
            assert "yes" in capsys.readouterr().out
        finally:
            process.send_signal(signal.SIGINT)
            try:
                stdout, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                stdout, _ = process.communicate()
        assert b"serving" in stdout
        assert b"drained and stopped" in stdout

    def test_serve_workers_subprocess_end_to_end(self, graph_file,
                                                 tmp_path, capsys):
        """``repro serve --workers 2``: the ready file lists two worker
        pids (not the parent's), queries answer through the pool, and
        SIGINT drains every process and segment."""
        ready = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_file,
             "--workers", "2", "--port", "0",
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            info = wait_ready(process, ready, timeout=60)
            host, port = info["host"], info["port"]
            assert info["workers"] == 2
            assert len(info["pids"]) == 2
            assert process.pid not in info["pids"]
            assert main(["query", "--remote", f"{host}:{port}",
                         "0", "1", "1", "0"]) == 1
            out = capsys.readouterr().out
            assert "0 -> 1: yes" in out and "1 -> 0: no" in out
        finally:
            process.send_signal(signal.SIGINT)
            try:
                stdout, _ = process.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                stdout, _ = process.communicate()
        assert b"2 workers" in stdout
        assert b"drained and stopped" in stdout

    @pytest.mark.parametrize("engine", ["chain-closure", "two-hop",
                                        "composite"])
    def test_serve_engine_subprocess_end_to_end(self, graph_file,
                                                tmp_path, capsys,
                                                engine):
        """``repro serve --engine <name>`` answers remote queries for
        a chain engine, a baseline engine and the composite."""
        ready = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_file,
             "--engine", engine, "--port", "0",
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            info = wait_ready(process, ready)
            host, port = info["host"], info["port"]
            assert main(["query", "--remote", f"{host}:{port}",
                         "0", "1"]) == 0
            assert "yes" in capsys.readouterr().out
        finally:
            process.send_signal(signal.SIGINT)
            try:
                stdout, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                stdout, _ = process.communicate()
        assert f"engine {engine}".encode() in stdout

    def test_serve_method_flag_warns_deprecated(self, graph_file,
                                                capsys):
        """--method still parses but routes through --engine and says
        so on stderr (it needs a server, so only check the parse +
        deprecation path via the conflict error)."""
        assert main(["serve", graph_file, "--method", "closure",
                     "--engine", "chain-jagadish"]) == 2
        err = capsys.readouterr().err
        assert "deprecated" in err
        assert "conflicts" in err

    def test_serve_persisted_index_read_only(self, graph_file,
                                             tmp_path, capsys):
        from repro.service import IndexManager, RemoteError, \
            ServiceClient, start_in_thread
        index_path = tmp_path / "graph.idx"
        assert main(["index", graph_file, "-o", str(index_path)]) == 0
        capsys.readouterr()
        manager = IndexManager.from_index_file(index_path)
        with start_in_thread(manager, port=0) as handle:
            host, port = handle.address
            with ServiceClient(host, port) as client:
                epoch, reachable = client.query(0, 1)
                assert (epoch, reachable) == (0, True)
                with pytest.raises(RemoteError) as excinfo:
                    client.add_edge(0, 99)
                assert excinfo.value.code == "unsupported"


class TestGenerate:
    def test_writes_graph_file(self, tmp_path, capsys):
        out = tmp_path / "generated.txt"
        assert main(["generate", "dsrg", "50", "20", "--seed", "3",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        from repro.graph.io import read_edge_list
        graph = read_edge_list(out)
        assert graph.num_nodes >= 50

    def test_stdout_output(self, capsys):
        assert main(["generate", "sparse", "30", "35"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# repro edge list")

    def test_round_trip_through_stats(self, tmp_path, capsys):
        out = tmp_path / "dense.txt"
        main(["generate", "dense", "40", "25", "--out", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        assert "width" in capsys.readouterr().out


class TestIndexCodecFlag:
    def test_codec_flag_writes_compressed_v4(self, graph_file,
                                             tmp_path, capsys):
        out = tmp_path / "c.idx"
        assert main(["index", graph_file, "-o", str(out),
                     "--codec", "compressed"]) == 0
        document = json.loads(out.read_text())
        assert document["version"] == 4
        assert document["codec"] == "compressed"
        capsys.readouterr()
        assert main(["query", "--index", str(out), "0", "1"]) in (0, 1)

    def test_codec_flag_applies_to_concat_builds(self, graph_file,
                                                 tmp_path, capsys):
        out = tmp_path / "concat.idx"
        assert main(["index", graph_file, "-o", str(out),
                     "--method", "concat",
                     "--codec", "compressed"]) == 0
        document = json.loads(out.read_text())
        assert document["codec"] == "compressed"
        assert document["method"] == "concat"


class TestIndexFromEdges:
    def test_edges_flag_streams_a_graph(self, graph_file, tmp_path,
                                        capsys):
        out_graph = tmp_path / "from_graph.idx"
        out_edges = tmp_path / "from_edges.idx"
        assert main(["index", graph_file, "-o", str(out_graph)]) == 0
        assert main(["index", "--edges", graph_file,
                     "-o", str(out_edges)]) == 0
        # same graph, either ingest path: identical labelled answers
        capsys.readouterr()
        for pair in (("0", "1"), ("3", "0"), ("5", "5")):
            a = main(["query", "--index", str(out_graph), *pair])
            b = main(["query", "--index", str(out_edges), *pair])
            assert a == b

    def test_graph_and_edges_together_rejected(self, graph_file,
                                               capsys):
        assert main(["index", graph_file, "--edges", graph_file,
                     "-o", "x.idx"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_graph_nor_edges_rejected(self, capsys):
        assert main(["index", "-o", "x.idx"]) == 2


class TestStatsIndex:
    def test_reports_codec_and_sizes(self, graph_file, tmp_path,
                                     capsys):
        out = tmp_path / "s.idx"
        main(["index", graph_file, "-o", str(out),
              "--codec", "compressed"])
        capsys.readouterr()
        assert main(["stats", "--index", str(out)]) == 0
        text = capsys.readouterr().out
        assert "compressed" in text
        assert "label bytes" in text
        assert "on-disk" in text

    def test_missing_index_file_errors(self, tmp_path, capsys):
        assert main(["stats", "--index",
                     str(tmp_path / "missing.idx")]) == 2

    def test_stats_without_any_source_errors(self, capsys):
        assert main(["stats"]) == 2


class TestGenerateScale:
    def test_scale_family_generates(self, tmp_path, capsys):
        out = tmp_path / "scale.txt"
        assert main(["generate", "scale", "200", "240",
                     "--seed", "4", "--out", str(out)]) == 0
        from repro.graph.io import read_edge_list
        graph = read_edge_list(out)
        assert graph.num_nodes == 200
