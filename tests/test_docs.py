"""Doc lint: the documentation stays runnable and in sync with the code.

Two guarantees:

* every fenced ``python`` block in ``README.md`` and ``docs/*.md``
  executes (blocks run cumulatively per file, sharing one namespace,
  so a block may use names defined by an earlier block in the same
  file);
* the metric tables in ``docs/OBSERVABILITY.md`` list *exactly* the
  names in :data:`repro.obs.CATALOG` — no undocumented metrics, no
  documented ghosts;
* the engines table in ``docs/API.md`` lists *exactly* the names in
  the :mod:`repro.engine` registry;
* the guarantee table in ``docs/OBSERVERS.md`` matches
  :data:`repro.observers.OBSERVER_SPECS` row for row.
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.obs import CATALOG

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md")),
    key=lambda path: path.name,
)

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("path", DOC_FILES,
                         ids=lambda path: path.name)
def test_python_blocks_execute(path):
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    namespace: dict = {}
    for number, block in enumerate(blocks, start=1):
        code = compile(block, f"{path.name}#block-{number}", "exec")
        with redirect_stdout(io.StringIO()):
            exec(code, namespace)  # noqa: S102 - the point of the lint


# A metric row looks like ``| `name` | unit | emitted by |``; rows
# only count inside the "## Metrics catalogue" section.
_ROW = re.compile(r"^\| `([^`]+)` \|", re.MULTILINE)


def documented_metric_names() -> set[str]:
    text = (REPO / "docs" / "OBSERVABILITY.md").read_text(
        encoding="utf-8")
    start = text.index("## Metrics catalogue")
    end = text.find("\n## ", start)
    section = text[start:end] if end != -1 else text[start:]
    return set(_ROW.findall(section))


def test_observability_catalogue_matches_the_registry():
    documented = documented_metric_names()
    registered = {spec.name for spec in CATALOG}
    assert documented, "no metric rows found in OBSERVABILITY.md"
    missing_from_docs = registered - documented
    missing_from_code = documented - registered
    assert not missing_from_docs, (
        f"metrics in repro.obs.CATALOG but not documented: "
        f"{sorted(missing_from_docs)}")
    assert not missing_from_code, (
        f"metrics documented but not in repro.obs.CATALOG: "
        f"{sorted(missing_from_code)}")


def test_catalogue_documents_every_kind():
    kinds = {spec.kind for spec in CATALOG}
    assert kinds == {"span", "counter", "gauge", "histogram"}


def test_api_doc_lists_exactly_the_registered_engines():
    """docs/API.md's Engines table mirrors the engine registry."""
    import repro.engine as engine
    text = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
    start = text.index("## Engines")
    end = text.find("\n## ", start)
    section = text[start:end] if end != -1 else text[start:]
    documented = set(_ROW.findall(section))
    registered = set(engine.names())
    assert documented == registered, (
        f"API.md Engines table out of sync: missing "
        f"{sorted(registered - documented)}, ghosts "
        f"{sorted(documented - registered)}")


def test_engine_doc_rows_match_registry_capabilities_and_labels():
    """Each documented row's capability words and paper label agree
    with the registered spec."""
    import repro.engine as engine
    text = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
    start = text.index("## Engines")
    end = text.find("\n## ", start)
    section = text[start:end] if end != -1 else text[start:]
    row = re.compile(r"^\| `([^`]+)` \| ([^|]+) \| ([^|]+) \|",
                     re.MULTILINE)
    for name, caps_cell, label_cell in row.findall(section):
        if name == "name":
            continue
        spec = engine.get(name)
        documented_caps = set(caps_cell.split()) - {"—"}
        expected_caps = {flag.replace("supports_batch", "batch")
                         for flag, value in spec.capabilities.items()
                         if value}
        assert documented_caps == expected_caps, name
        label = label_cell.strip()
        assert label == (spec.paper_label or "—"), name


def test_observers_doc_table_matches_the_registry():
    """docs/OBSERVERS.md's guarantee table mirrors OBSERVER_SPECS —
    same observers, same order, same declared guarantees and costs."""
    import repro.observers as observers
    text = (REPO / "docs" / "OBSERVERS.md").read_text(encoding="utf-8")
    start = text.index("## The guarantee table")
    end = text.find("\n## ", start)
    section = text[start:end] if end != -1 else text[start:]
    row = re.compile(
        r"^\| `([^`]+)` \| ([^|]+) \| ([^|]+) \| ([^|]+) \|",
        re.MULTILINE)
    documented = [(name, answers.strip(), cost.strip(), memory.strip())
                  for name, answers, cost, memory in row.findall(section)]
    registered = [(spec.name, spec.answers, spec.prepare_cost,
                   spec.memory) for spec in observers.specs()]
    assert documented == registered, (
        f"OBSERVERS.md guarantee table out of sync with "
        f"OBSERVER_SPECS:\ndocumented: {documented}\n"
        f"registered: {registered}")


def test_service_doc_lists_exactly_the_service_metrics():
    """docs/SERVICE.md's metrics table mirrors the service/* catalogue."""
    text = (REPO / "docs" / "SERVICE.md").read_text(encoding="utf-8")
    start = text.index("## Metrics")
    end = text.find("\n## ", start)
    section = text[start:end] if end != -1 else text[start:]
    documented = {name for name in _ROW.findall(section)
                  if name.startswith("service/")}
    registered = {spec.name for spec in CATALOG
                  if spec.name.startswith("service/")}
    assert documented == registered, (
        f"SERVICE.md metrics table out of sync: missing "
        f"{sorted(registered - documented)}, ghosts "
        f"{sorted(documented - registered)}")
