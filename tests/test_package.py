"""The public package surface works as the README promises."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart():
    graph = repro.DiGraph.from_edges([
        ("a", "b"), ("a", "c"), ("b", "c"), ("b", "i"),
        ("c", "d"), ("c", "e"), ("f", "b"), ("f", "g"),
        ("g", "d"), ("g", "h"), ("h", "e"), ("h", "i"),
    ])
    index = repro.ChainIndex.build(graph)
    assert index.is_reachable("a", "e")
    assert not index.is_reachable("d", "a")
    assert index.num_chains == 3
    assert "g" in set(index.descendants("g"))


def test_subpackage_exports_resolve():
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.graph
    import repro.matching
    for module in (repro.baselines, repro.bench, repro.core,
                   repro.graph, repro.matching):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)
