"""Unit tests for the benchmark runners."""

from repro.bench.harness import (
    build_all,
    build_index,
    random_queries,
    run_query_series,
    time_query_batch,
)
from repro.graph.generators import chain_graph, random_dag


class TestBuild:
    def test_build_index_records_size_and_time(self):
        g = random_dag(30, 0.2, seed=1)
        result = build_index("TE", g)
        assert result.method == "TE"
        assert result.size_words == result.index.size_words()
        assert result.build_seconds >= 0.0

    def test_build_all_covers_every_method(self):
        g = random_dag(20, 0.2, seed=2)
        methods = ["ours", "DD", "TE", "Dual-II", "MM"]
        results = build_all(g, methods)
        assert [r.method for r in results] == methods

    def test_all_methods_agree_on_answers(self):
        g = random_dag(25, 0.25, seed=3)
        results = build_all(g, ["ours", "DD", "TE", "Dual-II", "MM",
                                "2-hop", "traversal"])
        queries = random_queries(g, 200, seed=4)
        answers = [[r.index.is_reachable(s, t) for s, t in queries]
                   for r in results]
        for other in answers[1:]:
            assert other == answers[0]


class TestQueries:
    def test_random_queries_deterministic(self):
        g = chain_graph(10)
        assert random_queries(g, 50, seed=9) == random_queries(g, 50,
                                                               seed=9)

    def test_random_queries_empty_graph(self):
        from repro.graph.digraph import DiGraph
        assert random_queries(DiGraph(), 10) == []

    def test_time_query_batch_returns_seconds(self):
        g = chain_graph(10)
        index = build_index("MM", g).index
        seconds = time_query_batch(index, random_queries(g, 100, seed=1))
        assert seconds >= 0.0

    def test_run_query_series_shape(self):
        g = chain_graph(20)
        index = build_index("ours", g).index
        series = run_query_series(index, "ours", g, [10, 20, 30], seed=0)
        assert series.counts == [10, 20, 30]
        assert len(series.seconds) == 3
