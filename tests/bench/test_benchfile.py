"""Tests for the shared ``BENCH_*.json`` merge policy."""

import json

from repro.bench.benchfile import merge_bench_json


class TestMergeBenchJson:
    def test_creates_a_fresh_file(self, tmp_path):
        path = tmp_path / "BENCH.json"
        document = merge_bench_json(path, {"build_seconds": 1.5})
        assert document == {"build_seconds": 1.5}
        assert json.loads(path.read_text()) == document

    def test_preserves_sections_owned_by_other_runners(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merge_bench_json(path, {"observers": {"noop": 1}})
        merge_bench_json(path, {"scalar_qps": 9000.0})
        document = json.loads(path.read_text())
        assert document == {"observers": {"noop": 1},
                            "scalar_qps": 9000.0}

    def test_fresh_keys_overwrite_stale_ones(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merge_bench_json(path, {"scalar_qps": 1.0, "keep": True})
        merge_bench_json(path, {"scalar_qps": 2.0})
        document = json.loads(path.read_text())
        assert document["scalar_qps"] == 2.0
        assert document["keep"] is True

    def test_corrupt_file_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        assert merge_bench_json(path, {"ok": 1}) == {"ok": 1}

    def test_non_dict_document_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("[1, 2, 3]\n")
        assert merge_bench_json(path, {"ok": 1}) == {"ok": 1}

    def test_output_is_deterministic(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merge_bench_json(path, {"b": 1, "a": 2})
        text = path.read_text()
        assert text == '{\n  "a": 2,\n  "b": 1\n}\n'
