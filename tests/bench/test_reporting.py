"""Unit tests for paper-style report rendering."""

from repro.bench.metrics import BuildResult, QuerySeries
from repro.bench.reporting import (
    render_build_table,
    render_series,
    render_table,
    write_report,
)


class TestRenderTable:
    def test_alignment_and_content(self):
        table = render_table("Title", ["a", "bbbb"], [(1, 2), (33, 4)])
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert lines[2].startswith("-")
        assert "33" in lines[4]

    def test_build_table_has_paper_headers(self):
        results = [BuildResult("ours", None, 1.23456, 999)]
        table = render_build_table("Table X", results)
        assert "size of data structures (16 bits)" in table
        assert "time for generating TC (sec.)" in table
        assert "1.235" in table and "999" in table

    def test_series_layout(self):
        series = [QuerySeries("ours", [10, 20], [0.1, 0.2]),
                  QuerySeries("MM", [10, 20], [0.05, 0.1])]
        table = render_series("Fig Y", series)
        assert "queries" in table
        assert "ours" in table and "MM" in table
        assert "0.1000" in table

    def test_empty_series(self):
        assert "(no data)" in render_series("Fig Z", [])


class TestWriteReport:
    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "report.txt"
        write_report(target, "hello\n")
        assert target.read_text() == "hello\n"
