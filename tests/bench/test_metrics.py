"""Unit tests for bench timing/size primitives."""

import time

from repro.bench.metrics import BuildResult, QuerySeries, Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01

    def test_zero_before_use(self):
        assert Timer().seconds == 0.0


class TestBuildResult:
    def test_row_rounds_time(self):
        result = BuildResult(method="ours", index=None,
                             build_seconds=0.123456, size_words=42)
        assert result.row() == ("ours", 42, 0.1235)


class TestQuerySeries:
    def test_defaults(self):
        series = QuerySeries(method="TE", counts=[10, 20])
        assert series.seconds == []
