"""Unit tests for the benchmark workload definitions."""

from repro.bench.workloads import (
    GROUP1_METHODS,
    GROUP23_METHODS,
    METHOD_BUILDERS,
    QUERY_METHODS,
    group1_graphs,
    group2_dsg_graph,
    group2_dsrg_graph,
    group3_dense_graph,
    query_counts,
)
from repro.graph.topology import is_dag


class TestMethodRegistry:
    def test_all_method_lists_are_registered(self):
        for name in GROUP1_METHODS + GROUP23_METHODS + QUERY_METHODS:
            assert name in METHOD_BUILDERS

    def test_table1_has_six_methods(self):
        assert len(GROUP1_METHODS) == 6
        assert "2-hop" in GROUP1_METHODS

    def test_tables_3_to_5_drop_two_hop(self):
        assert "2-hop" not in GROUP23_METHODS
        assert len(GROUP23_METHODS) == 5


class TestWorkloads:
    def test_group1_is_a_series_of_five_dags(self):
        workloads = group1_graphs(scale=0.05)
        assert len(workloads) == 5
        for workload in workloads:
            assert is_dag(workload.graph)
        # The requested edge counts grow along the series (the actual
        # counts wobble slightly after SCC collapsing).
        requested = [int(w.label.split("e=")[1]) for w in workloads]
        assert requested == sorted(requested)
        assert len(set(requested)) == 5

    def test_group2_graphs(self):
        dsg = group2_dsg_graph(scale=0.1)
        dsrg = group2_dsrg_graph(scale=0.1)
        assert is_dag(dsg.graph) and is_dag(dsrg.graph)
        assert "DSG" in dsg.label and "DSRG" in dsrg.label

    def test_group3_density(self):
        workload = group3_dense_graph(scale=0.5)
        graph = workload.graph
        density = graph.num_edges / graph.num_nodes ** 2
        assert 0.2 < density < 0.3

    def test_query_counts_scale(self):
        counts = query_counts(scale=0.1)
        assert len(counts) == 10
        assert counts[0] * 10 == counts[-1]

    def test_scale_changes_size(self):
        small = group2_dsrg_graph(scale=0.1).graph
        large = group2_dsrg_graph(scale=0.3).graph
        assert large.num_nodes > small.num_nodes

    def test_workloads_are_deterministic(self):
        a = group3_dense_graph(scale=0.2).graph
        b = group3_dense_graph(scale=0.2).graph
        assert sorted(a.edges()) == sorted(b.edges())
