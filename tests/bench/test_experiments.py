"""Smoke tests: every experiment runs end-to-end at tiny scale."""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS

TINY = 0.03


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_reports(name):
    report = ALL_EXPERIMENTS[name](scale=TINY)
    assert isinstance(report, str)
    assert report.strip()


def test_table1_mentions_all_six_methods():
    report = ALL_EXPERIMENTS["table1"](scale=TINY)
    for method in ("ours", "DD", "TE", "Dual-II", "2-hop", "MM"):
        assert method in report


def test_tables_3_to_5_skip_two_hop():
    for name in ("table3", "table4", "table5"):
        report = ALL_EXPERIMENTS[name](scale=TINY)
        assert "2-hop" not in report
        assert "ours" in report


def test_figures_have_ten_batch_sizes():
    report = ALL_EXPERIMENTS["fig13"](scale=TINY)
    # header + separator + 10 rows (+ title)
    assert len(report.strip().splitlines()) == 13


def test_table2_reports_both_graphs():
    report = ALL_EXPERIMENTS["table2"](scale=TINY)
    assert "DSG" in report and "DSRG" in report
