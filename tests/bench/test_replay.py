"""Tests for the workload replay harness (``repro.bench.replay``).

Determinism is the contract under test: the same seed must produce
the same schedule byte for byte, and replaying it — in either loop
mode, any number of times — must land every request in the same
answer class.  Timing may vary; classification may not.
"""

import pytest

from repro.bench.replay import (
    DEFAULT_OBJECTIVES,
    SMOKE_FAMILIES,
    ReplayResult,
    evaluate_objectives,
    replay_closed_loop,
    replay_open_loop,
    schedule_from_journal,
    schedule_sha256,
    schedule_to_bytes,
    synthetic_schedule,
)
from repro.bench.workloads import ZOO_FAMILIES, build_zoo_graph
from repro.service import IndexManager, RequestCapture, start_in_thread

SPEC = ZOO_FAMILIES["sparse"]


@pytest.fixture(scope="module")
def graph():
    return build_zoo_graph(SPEC, 0.1)


@pytest.fixture(scope="module")
def schedule(graph):
    return synthetic_schedule(SPEC, graph, count=80, rate_qps=2000.0,
                              seed=5)


@pytest.fixture()
def server(graph):
    manager = IndexManager.from_graph(graph)
    with start_in_thread(manager) as handle:
        yield handle.address


class TestScheduleDeterminism:
    def test_same_seed_same_bytes(self, graph):
        first = synthetic_schedule(SPEC, graph, count=120, seed=9)
        second = synthetic_schedule(SPEC, graph, count=120, seed=9)
        assert schedule_to_bytes(first) == schedule_to_bytes(second)
        assert schedule_sha256(first) == schedule_sha256(second)

    def test_different_seed_different_schedule(self, graph):
        assert schedule_sha256(
            synthetic_schedule(SPEC, graph, count=120, seed=9)
        ) != schedule_sha256(
            synthetic_schedule(SPEC, graph, count=120, seed=10))

    def test_arrivals_are_monotonic(self, schedule):
        stamps = [entry["at_ms"] for entry in schedule]
        assert stamps == sorted(stamps)
        assert stamps[0] >= 0.0

    def test_mix_follows_the_spec(self, graph):
        entries = synthetic_schedule(SPEC, graph, count=400, seed=3)
        ops = [entry["op"] for entry in entries]
        reads = ops.count("query") + ops.count("query_batch")
        assert reads / len(ops) == pytest.approx(SPEC.read_fraction,
                                                 abs=0.05)
        # write targets are fresh sinks: replays cannot collide
        writes = [entry for entry in entries
                  if entry["op"] == "add_edge"]
        assert all(entry["create"] for entry in writes)
        targets = [entry["target"] for entry in writes]
        assert len(targets) == len(set(targets))

    def test_count_must_be_positive(self, graph):
        with pytest.raises(ValueError):
            synthetic_schedule(SPEC, graph, count=0)


class TestScheduleFromJournal:
    def test_round_trip_through_a_capture_file(self, tmp_path, graph):
        capture = RequestCapture(tmp_path / "j.ndjson")
        capture.record("query", klass="positive", source="a",
                       target="b", latency_ms=0.2, ok=True, epoch=0)
        capture.record("query_batch", klass="batch",
                       pairs=[["a", "b"]], latency_ms=0.4, ok=True)
        capture.record("add_edge", source="a", target="z",
                       create=True, ok=True)
        path = capture.flush()
        entries = schedule_from_journal(path)
        assert [entry["op"] for entry in entries] \
            == ["query", "query_batch", "add_edge"]
        assert all("at_ms" in entry for entry in entries)
        # observed metadata does not leak into the replayed request
        assert all("latency_ms" not in entry and "class" not in entry
                   for entry in entries)

    def test_accepts_record_lists_and_skips_foreign_verbs(self):
        entries = schedule_from_journal([
            {"ts_ms": 1.0, "op": "query", "source": "a",
             "target": "b"},
            {"ts_ms": 2.0, "op": "ping"},
            {"ts_ms": 3.0, "op": "stats"},
        ])
        assert len(entries) == 1
        assert entries[0]["at_ms"] == 1.0


class TestReplay:
    def test_closed_loop_answers_every_entry(self, server, schedule):
        host, port = server
        result = replay_closed_loop(host, port, schedule,
                                    concurrency=3)
        assert result.mode == "closed"
        assert result.sent == len(schedule)
        assert result.ok + result.errors == result.sent
        assert result.errors == 0
        assert result.qps > 0

    def test_replays_classify_identically(self, server, schedule):
        host, port = server
        first = replay_closed_loop(host, port, schedule,
                                   concurrency=3)
        second = replay_closed_loop(host, port, schedule,
                                    concurrency=2)
        third = replay_open_loop(host, port, schedule, connections=2)
        assert first.class_counts() == second.class_counts() \
            == third.class_counts()
        assert set(first.class_counts()) <= {"positive", "negative",
                                             "batch", "write"}

    def test_open_loop_honours_the_clock(self, server, schedule):
        host, port = server
        result = replay_open_loop(host, port, schedule,
                                  connections=2)
        assert result.sent == len(schedule)
        # the run cannot finish before the last scheduled arrival
        assert result.wall_seconds \
            >= schedule[-1]["at_ms"] / 1e3 * 0.9

    def test_concurrency_must_be_positive(self, server, schedule):
        host, port = server
        with pytest.raises(ValueError):
            replay_closed_loop(*server, schedule, concurrency=0)
        with pytest.raises(ValueError):
            replay_open_loop(host, port, schedule, connections=0)

    def test_class_summaries_carry_the_ladder(self, server, schedule):
        host, port = server
        result = replay_closed_loop(host, port, schedule,
                                    concurrency=2)
        for summary in result.class_summaries().values():
            assert set(summary) == {"count", "p50_ms", "p99_ms",
                                    "p999_ms"}
            assert summary["p50_ms"] <= summary["p99_ms"] \
                <= summary["p999_ms"]


class TestReplayResult:
    def test_merge_is_exact(self):
        left = ReplayResult("closed")
        right = ReplayResult("closed")
        left.observe("positive", 1e-3, True)
        right.observe("positive", 2e-3, True)
        right.observe("error", 5e-3, False)
        left.merge(right)
        assert left.sent == 3
        assert left.ok == 2 and left.errors == 1
        assert left.class_counts() == {"error": 1, "positive": 2}


class TestEvaluateObjectives:
    def test_loose_objectives_pass(self, server, schedule):
        host, port = server
        result = replay_closed_loop(host, port, schedule,
                                    concurrency=2)
        report = evaluate_objectives(result, DEFAULT_OBJECTIVES)
        assert report["healthy"]
        assert {row["spec"] for row in report["objectives"]} \
            == set(DEFAULT_OBJECTIVES)

    def test_impossible_objective_breaches(self, server, schedule):
        host, port = server
        result = replay_closed_loop(host, port, schedule,
                                    concurrency=2)
        report = evaluate_objectives(result, ["positive p99 < 1ns"])
        assert not report["healthy"]
        assert report["breach_count"] == 1

    def test_availability_feeds_from_outcomes(self):
        result = ReplayResult("closed")
        for _ in range(98):
            result.observe("positive", 1e-3, True)
        result.observe("error", 1e-3, False)
        result.observe("error", 1e-3, False)
        report = evaluate_objectives(result, ["availability >= 99%"])
        (row,) = report["objectives"]
        assert row["observed"] == pytest.approx(0.98)
        assert not row["compliant"]


def test_smoke_families_cover_the_zoo():
    assert set(SMOKE_FAMILIES) <= set(ZOO_FAMILIES)
    assert len(SMOKE_FAMILIES) >= 4
