"""Unit tests for the repro-bench command line."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == 1.0
        assert args.out is None

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_prints_report(self, capsys):
        assert main(["table2", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "DSG" in out

    def test_writes_report_files(self, tmp_path, capsys):
        assert main(["table5", "--scale", "0.03", "--out",
                     str(tmp_path)]) == 0
        assert (tmp_path / "table5.txt").exists()
        capsys.readouterr()
