"""Integration tests: the full pipeline across subsystems.

These exercise realistic end-to-end flows — generate → (serialise →
parse) → condense → decompose → label → query — and check all seven
methods agree on every answer, per workload family.
"""

import pytest

from repro import ChainIndex, DiGraph, dag_width
from repro.bench.harness import build_all, random_queries
from repro.graph.generators import (
    citation_dag,
    dense_dag,
    random_digraph,
    semi_random_dag,
    sparse_random_dag,
    systematic_dag,
)
from repro.graph.io import dumps, loads

ALL_METHODS = ["ours", "DD", "TE", "Dual-II", "MM", "2-hop", "traversal"]


@pytest.mark.parametrize("family,graph_fn", [
    ("sparse", lambda: sparse_random_dag(300, 340, seed=1)),
    ("dsg", lambda: systematic_dag(10, 5, seed=2)),
    ("dsrg", lambda: semi_random_dag(250, 120, seed=3)),
    ("dense", lambda: dense_dag(60, 0.25, seed=4)),
    ("citation", lambda: citation_dag(250, 3, seed=6)),
])
def test_every_method_agrees_on_every_family(family, graph_fn):
    graph = graph_fn()
    results = build_all(graph, ALL_METHODS)
    queries = random_queries(graph, 400, seed=5)
    reference = [results[0].index.is_reachable(s, t) for s, t in queries]
    for result in results[1:]:
        answers = [result.index.is_reachable(s, t) for s, t in queries]
        assert answers == reference, (family, result.method)


def test_serialise_then_index_round_trip(tmp_path):
    graph = semi_random_dag(200, 80, seed=9)
    parsed = loads(dumps(graph))
    original = ChainIndex.build(graph)
    reloaded = ChainIndex.build(parsed)
    queries = random_queries(graph, 300, seed=11)
    for source, target in queries:
        assert (original.is_reachable(source, target)
                == reloaded.is_reachable(source, target))


def test_cyclic_pipeline_end_to_end():
    graph = random_digraph(150, 400, seed=13)
    index = ChainIndex.build(graph, check=True)
    # Spot-check against online BFS on the raw (cyclic) graph.
    from tests.conftest import bfs_reachable
    for source, target in random_queries(graph, 300, seed=17):
        assert index.is_reachable(source, target) == bfs_reachable(
            graph, source, target)


def test_chain_count_tracks_width_on_benchmark_families():
    for graph in (systematic_dag(12, 6, seed=21),
                  semi_random_dag(300, 150, seed=22),
                  dense_dag(70, 0.25, seed=23)):
        index = ChainIndex.build(graph)
        assert index.num_chains == dag_width(graph)


def test_methods_share_one_interface():
    graph = sparse_random_dag(100, 120, seed=31)
    for result in build_all(graph, ALL_METHODS):
        assert isinstance(result.size_words, int)
        assert result.size_words >= 0
        assert isinstance(result.index.is_reachable(
            graph.node_at(0), graph.node_at(1)), bool)


def test_empty_and_singleton_graphs_across_methods():
    empty = DiGraph()
    single = DiGraph()
    single.add_node("only")
    for method in ALL_METHODS:
        from repro.bench.workloads import METHOD_BUILDERS
        builder = METHOD_BUILDERS[method]
        builder(empty)
        index = builder(single)
        assert index.is_reachable("only", "only")
